#!/usr/bin/env python
"""Chaos smoke test for ``repro serve`` worker isolation + journal (CI).

Extends ``scripts/serve_smoke.py`` with the failure modes that take
whole processes down, driven against the real daemon as a subprocess:

Phase 1 — crash containment (``--workers 1``, ``--no-journal``):
1. a clean request establishes the baseline bytes;
2. an injected SIGKILL of the worker mid-request must answer ``500``
   (``worker_crashed``/``killed``) while ``/healthz`` stays green;
3. the resubmit after the pool restarts must be byte-identical;
4. an injected hang must be reaped by the watchdog (``500``/``hang``)
   and again recover byte-identically;
5. one more crash quarantines the signature (``422``) until
   ``POST /quarantine/clear`` releases it — then it completes.

Phase 2 — durable journal (journal on, fresh cache dir):
6. SIGKILL the *daemon* while a request is in flight — the journal
   holds an unfinished record;
7. a fresh ``repro serve --recover`` replays it to completion during
   boot, the client's resubmit short-circuits to the journaled result,
   and those bytes match a no-journal daemon executing the same
   request from scratch;
8. ``repro store stats`` reports the ``journal`` stream.

Phase 3 — shared kernel cache (``REPRO_ENGINE=native``, fresh cache):
9. the first request compiles native kernels into the on-disk cache
   (``kernel_compiles_total`` in ``/metrics``);
10. after a SIGKILLed worker, the resubmit through the respawned
    worker must load the shared ``.so`` (``kernel_cache_hits_total``
    grows, ``kernel_compiles_total`` does not) and stay
    byte-identical.  Skipped when no C toolchain is discovered.

Stdlib only; exits non-zero with a readable message on any violation.
Run directly or via ``make test-chaos``.
"""

import http.client
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""

#: the worker.execute schedule for phase 1, counted per dispatched job
#: (parent-side accounting: the schedule survives worker restarts).
#: job 0 clean, job 1 SIGKILL, job 2 clean, job 3 hang, job 4 exit.
CHAOS_FAULTS = ("worker.execute:kill:after=1:times=1;"
                "worker.execute:hang:after=3:times=1;"
                "worker.execute:exit:code=5:after=4:times=1")


def fail(message):
    print(f"chaos-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def step(message):
    print(f"chaos-smoke: {message}", flush=True)


def post(addr, body, path="/v1/optimize", timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("POST", path, json.dumps(body),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read().decode()
    finally:
        conn.close()


def get_json(addr, path, timeout=30):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_until(predicate, timeout=30.0, message="condition"):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.02)
    fail(f"timed out waiting for {message}")


def boot(args, env):
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--session", json.dumps({"dataset_size": 40})] + args,
        cwd=REPO, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    banner = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    if not match:
        proc.kill()
        fail(f"no listening banner, got: {banner!r}")
    return proc, (match.group(1), int(match.group(2)))


def base_env(**extra):
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.update({
        "PYTHONPATH": os.path.join(REPO, "src"),
        "PYTHONUNBUFFERED": "1",
        "REPRO_RETRY_BASE": "0.001",
        "REPRO_NO_CACHE": "1",
    })
    env.update(extra)
    return env


def expect_crash_500(addr, body, expected_reason):
    status, text = post(addr, body)
    if status != 500:
        fail(f"expected 500 for {expected_reason} crash, got {status} "
             f"{text[:200]}")
    error = json.loads(text)["error"]
    if error["kind"] != "worker_crashed" \
            or error["reason"] != expected_reason:
        fail(f"crash error malformed (want reason="
             f"{expected_reason}): {error}")
    status, doc = get_json(addr, "/healthz")
    if status != 200 or doc.get("status") != "ok":
        fail(f"daemon unhealthy after worker crash: {status} {doc}")
    return error


def phase1_crash_containment():
    env = base_env(REPRO_FAULTS=CHAOS_FAULTS)
    step("phase 1: booting daemon with --workers 1 under "
         + CHAOS_FAULTS)
    proc, addr = boot(["--workers", "1", "--no-journal",
                       "--hang-timeout", "2", "--crash-limit", "2",
                       "--worker-mem", "2048"], env)
    try:
        body = {"request": {"source": KERNEL}, "use_store": False}

        status, baseline = post(addr, body)
        if status != 200:
            fail(f"baseline request: {status} {baseline[:200]}")
        step("baseline request completed through a worker")

        expect_crash_500(addr, body, "killed")
        step("worker SIGKILL mid-request -> 500, daemon healthy")

        status, text = post(addr, body)
        if status != 200:
            fail(f"post-crash resubmit: {status} {text[:200]}")
        if text != baseline:
            fail("post-crash resubmit is not byte-identical")
        step("resubmit after pool restart byte-identical")

        expect_crash_500(addr, body, "hang")
        step("hung worker reaped by watchdog -> 500, daemon healthy")

        error = expect_crash_500(addr, body, "exit")
        if not error.get("quarantined"):
            fail(f"second consecutive crash did not quarantine: {error}")
        signature = error["signature"]
        step("second consecutive crash quarantined the signature")

        status, text = post(addr, body)
        if status != 422 or json.loads(text)["error"]["kind"] \
                != "quarantined":
            fail(f"expected 422 quarantined, got {status} {text[:200]}")
        status, doc = get_json(addr, "/quarantine")
        if [e["signature"] for e in doc["quarantined"]] != [signature]:
            fail(f"/quarantine does not list the signature: {doc}")
        step("poison resubmit rejected with 422 + diagnostics")

        status, text = post(addr, {"signature": signature},
                            path="/quarantine/clear")
        if status != 200 or json.loads(text)["cleared"] != 1:
            fail(f"quarantine clear: {status} {text[:200]}")
        status, text = post(addr, body)
        if status != 200 or text != baseline:
            fail(f"post-clear request: {status}, byte-identical="
                 f"{text == baseline}")
        step("cleared quarantine; request completes byte-identically")

        status, metrics = get_json(addr, "/metrics")
        counters = metrics["counters"]
        workers = metrics["gauges"]["workers"]
        if counters.get("worker_crashes_total") != 3 \
                or workers["restarts_total"] < 3:
            fail(f"metrics disagree: {counters} {workers}")
        step(f"metrics consistent: 3 crashes, "
             f"{workers['restarts_total']} restarts, "
             f"{workers['hangs_total']} hang")
    finally:
        proc.kill()
        proc.wait()


def phase2_journal_recovery():
    cache = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    env = base_env(REPRO_CACHE_DIR=cache,
                   REPRO_FAULTS="llm.generate:delay:seconds=0.5:always")
    body = {"request": {"source": KERNEL}, "use_store": False,
            "session": {"llm_backend": "faulty"}}
    try:
        step("phase 2: booting journaling daemon with slow backend")
        proc, addr = boot([], env)
        try:
            def post_into_the_void():
                try:
                    post(addr, body)
                except OSError:
                    pass  # the daemon is about to be SIGKILLed under us

            abandoned = threading.Thread(target=post_into_the_void,
                                         daemon=True)
            abandoned.start()
            wait_until(
                lambda: get_json(addr, "/metrics")[1]["gauges"]
                ["inflight"] >= 1, message="request to be in flight")
            time.sleep(0.5)  # let the journal record reach "started"
        finally:
            proc.kill()  # the daemon dies mid-request, ungracefully
            proc.wait()
        step("daemon SIGKILLed mid-request")

        recover_env = base_env(REPRO_CACHE_DIR=cache)
        proc, addr = boot(["--recover"], recover_env)
        try:
            status, metrics = get_json(addr, "/metrics")
            if metrics["counters"].get("journal_replayed_total") != 1:
                fail(f"--recover did not replay: {metrics['counters']}")
            step("--recover replayed the unfinished request at boot")

            status, replayed = post(addr, body)
            if status != 200:
                fail(f"resubmit after recovery: {status}")
            status, metrics = get_json(addr, "/metrics")
            if metrics["counters"].get("journal_hits_total") != 1:
                fail("resubmit did not short-circuit to the journal")
            step("resubmit short-circuited to the journaled result")
        finally:
            proc.kill()
            proc.wait()

        # the replayed bytes must equal a from-scratch execution
        proc, addr = boot(["--no-journal"], base_env())
        try:
            status, scratch = post(addr, body)
            if status != 200:
                fail(f"from-scratch baseline: {status}")
            if replayed != scratch:
                fail("replayed result differs from from-scratch result")
            step("journaled result byte-identical to from-scratch run")
        finally:
            proc.kill()
            proc.wait()

        stats = subprocess.run(
            [sys.executable, "-m", "repro", "store", "stats",
             "--format", "json"],
            cwd=REPO, env=base_env(REPRO_CACHE_DIR=cache),
            capture_output=True, text=True)
        if stats.returncode != 0:
            fail(f"store stats exited {stats.returncode}: "
                 f"{stats.stderr[:200]}")
        doc = json.loads(stats.stdout)
        journal = doc["streams"].get("journal")
        if not journal or journal["entries"] != 1:
            fail(f"store stats does not report the journal: {doc}")
        step("repro store stats reports the journal stream")
    finally:
        shutil.rmtree(cache, ignore_errors=True)


def phase3_kernel_cache_survives_restart():
    """A restarted worker must reuse the shared on-disk kernel cache.

    Under ``REPRO_ENGINE=native`` the first request compiles the
    kernel into ``<cache-dir>/kernels/``; after the worker is
    SIGKILLed mid-request, the respawned worker must *load* that
    ``.so`` (``kernel_cache_hits_total`` in ``/metrics``) instead of
    compiling again (``kernel_compiles_total`` unchanged).
    """
    probe = subprocess.run(
        [sys.executable, "-c",
         "import sys; from repro.runtime.native import find_toolchain; "
         "sys.exit(0 if find_toolchain() else 3)"],
        cwd=REPO, env=base_env())
    if probe.returncode != 0:
        step("phase 3 skipped: no C toolchain discovered")
        return
    cache = tempfile.mkdtemp(prefix="repro-chaos-kernels-")
    env = base_env(
        REPRO_FAULTS="worker.execute:kill:after=1:times=1",
        REPRO_ENGINE="native",
        REPRO_CACHE_DIR=cache)
    # the kernel disk cache is the thing under test here
    env.pop("REPRO_NO_CACHE", None)
    step("phase 3: native kernel cache across a worker restart")
    proc, addr = boot(["--workers", "1", "--no-journal",
                       "--worker-mem", "2048"], env)
    try:
        body = {"request": {"source": KERNEL}, "use_store": False}

        status, baseline = post(addr, body)
        if status != 200:
            fail(f"native baseline request: {status} {baseline[:200]}")
        status, doc = get_json(addr, "/metrics")
        compiles = doc["counters"].get("kernel_compiles_total", 0)
        if compiles < 1:
            fail(f"first native request did not compile a kernel: "
                 f"{doc['counters']}")
        step(f"baseline request compiled {compiles} kernel(s) "
             "into the shared cache")

        expect_crash_500(addr, body, "killed")
        step("worker SIGKILL mid-request -> 500, daemon healthy")

        status, text = post(addr, body)
        if status != 200:
            fail(f"post-crash native resubmit: {status} {text[:200]}")
        if text != baseline:
            fail("post-crash native resubmit is not byte-identical")
        status, doc = get_json(addr, "/metrics")
        after = doc["counters"].get("kernel_compiles_total", 0)
        hits = doc["counters"].get("kernel_cache_hits_total", 0)
        if after != compiles:
            fail(f"restarted worker recompiled: {compiles} -> {after}")
        if hits < 1:
            fail(f"restarted worker never hit the kernel disk cache: "
                 f"{doc['counters']}")
        step(f"restarted worker reused the cache ({hits} disk hit(s), "
             "no recompile), bytes identical")
    finally:
        proc.kill()
        proc.wait()
        shutil.rmtree(cache, ignore_errors=True)


def main():
    phase1_crash_containment()
    phase2_journal_recovery()
    phase3_kernel_cache_survives_restart()
    print("chaos-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
