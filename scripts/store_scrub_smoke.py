#!/usr/bin/env python
"""Scrub/repair smoke test for the artifact plane (CI).

Demonstrates the integrity loop end to end against a real store
produced by a real optimization run, as subprocesses so every phase
sees only what the disk holds:

1. a cold run populates the results stream and prints its canonical
   result bytes (the reference);
2. a fault-injected write (``REPRO_FAULTS=store.append:bitflip``)
   rots the *live* record for that result on disk;
3. ``repro store verify`` must detect the damage (nonzero exit);
4. ``repro store verify --repair`` must heal it (exit 0: the local
   backend compacts the rotten line away and falls back to the valid
   superseded copy; the mirrored backend read-repairs from a healthy
   replica) and a re-verify must come back clean;
5. a warm run must now hit the store and be byte-identical to the
   cold reference.

Backend comes from ``REPRO_STORE_BACKEND`` (default ``local``).  The
``memory`` backend holds nothing between processes, so it runs a
reduced flow: clean verify + cold/cold byte equality (determinism).

Stdlib only; exits non-zero with a readable message on any violation.
Run directly or via ``make test-store``.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""

#: one optimization through the public API with the store on; result
#: bytes on stdout, store counters on stderr (both machine-readable)
RUN_CHILD = """
import json, sys
from repro.api import OptimizationRequest, OptimizerSession
from repro.ir import parse_scop
request = OptimizationRequest.make(
    parse_scop({kernel!r}), {{"N": 1500}}, {{"N": 8}},
    system="looprag", persona="deepseek")
session = OptimizerSession(dataset_size=40)
result = session.optimize(request)
sys.stdout.write(json.dumps(result.to_json_dict(), indent=2,
                            sort_keys=True))
from repro.evaluation.store import cache_stats
sys.stderr.write("STATS " + json.dumps(cache_stats()))
"""

#: re-append an existing results record; REPRO_FAULTS in the child's
#: environment rots the write, making the *live* line the damaged one
CORRUPT_CHILD = """
import sys
from repro.evaluation.store import RESULTS_STREAM, active_store
store = active_store().artifacts()
keys = sorted(store.list(RESULTS_STREAM))
assert keys, "cold run left an empty results stream"
store.append(RESULTS_STREAM, keys[0], store.read(RESULTS_STREAM,
                                                 keys[0]))
sys.stdout.write(keys[0])
"""


def fail(message):
    print(f"scrub-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def step(message):
    print(f"scrub-smoke: {message}", flush=True)


def child_env(cache, backend, **extra):
    env = dict(os.environ)
    for stale in ("REPRO_FAULTS", "REPRO_STORE_VERIFY",
                  "REPRO_NO_CACHE", "REPRO_STORE_MIRRORS"):
        env.pop(stale, None)
    env.update(PYTHONPATH="src", REPRO_CACHE_DIR=cache,
               REPRO_STORE_BACKEND=backend, **extra)
    return env


def run(argv, env, check=True, timeout=600):
    proc = subprocess.run(argv, cwd=REPO, env=env, timeout=timeout,
                          capture_output=True, text=True)
    if check and proc.returncode != 0:
        fail(f"{' '.join(argv[:4])}... exited {proc.returncode}:\n"
             f"{proc.stderr[-2000:]}")
    return proc


def optimize_once(env):
    proc = run([sys.executable, "-c",
                RUN_CHILD.format(kernel=KERNEL)], env)
    marker = proc.stderr.rfind("STATS ")
    if marker < 0:
        fail(f"run child printed no counters:\n{proc.stderr[-2000:]}")
    return proc.stdout, json.loads(proc.stderr[marker + 6:])


def verify(env, repair=False):
    argv = [sys.executable, "-m", "repro", "store", "verify",
            "--format", "json"]
    if repair:
        argv.append("--repair")
    return run(argv, env, check=False)


def main():
    backend = os.environ.get("REPRO_STORE_BACKEND") or "local"
    cache = tempfile.mkdtemp(prefix="repro-scrub-smoke-")
    env = child_env(cache, backend)
    try:
        step(f"backend={backend} cache={cache}")
        step("cold run (populates the store)...")
        reference, stats = optimize_once(env)
        if stats["writes"] < 1:
            fail(f"cold run never wrote to the store: {stats}")

        if backend == "memory":
            # nothing survives the process: reduced flow
            if verify(env).returncode != 0:
                fail("verify of an empty volatile store was not clean")
            again, _ = optimize_once(env)
            if again != reference:
                fail("two cold runs disagree byte-for-byte")
            step("PASS (reduced volatile flow)")
            return

        site = ("store.append.0" if backend == "mirrored"
                else "store.append")
        step(f"rotting the live record via REPRO_FAULTS at {site}...")
        run([sys.executable, "-c", CORRUPT_CHILD],
            child_env(cache, backend,
                      REPRO_FAULTS=f"{site}:bitflip:times=1"))

        step("store verify must detect the damage...")
        proc = verify(env)
        if proc.returncode == 0:
            fail(f"verify missed the corruption:\n{proc.stdout}")
        doc = json.loads(proc.stdout)
        if doc["clean"] or not doc["flagged"]:
            fail(f"verify exited nonzero but reported clean: {doc}")
        step(f"detected {doc['flagged']} issue(s)")

        step("store verify --repair must heal it...")
        proc = verify(env, repair=True)
        if proc.returncode != 0:
            fail(f"repair did not restore the store:\n{proc.stdout}")
        if verify(env).returncode != 0:
            fail("store still damaged after --repair")

        step("warm run must hit the store byte-identically...")
        warm, stats = optimize_once(env)
        if stats["hits"] < 1:
            fail(f"warm run missed the repaired store: {stats}")
        if warm != reference:
            fail("warm bytes differ from the cold reference "
                 f"({len(warm)} vs {len(reference)} bytes)")
        step("PASS")
    finally:
        shutil.rmtree(cache, ignore_errors=True)


if __name__ == "__main__":
    main()
