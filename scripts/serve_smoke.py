#!/usr/bin/env python
"""End-to-end smoke test for the ``repro serve`` daemon (CI gate).

Boots the real daemon as a subprocess with deterministic injected
faults (``REPRO_FAULTS``), then drives it the way an unlucky operator
would:

1. a request whose backend fails twice — must be retried to success;
2. the same request again fault-free — must be byte-identical;
3. a slow in-flight request plus one past the queue limit — the
   overflow must get ``503`` + ``Retry-After``, the in-flight request
   must be untouched;
4. SIGTERM mid-flight — the in-flight request must still complete,
   the daemon must drain and exit 0.

Stdlib only; exits non-zero with a readable message on any violation.
Run directly or via ``make test-serve``.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""

#: two transient failures early (must be retried away), then injected
#: slowness from call ~35 on (keeps later requests in flight long
#: enough to overload the queue and to be mid-flight at SIGTERM);
#: neither kind may change any result byte
FAULTS = ("llm.generate:raise:times=2;"
          "llm.generate:delay:seconds=0.03:after=35:always")


def fail(message):
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def step(message):
    print(f"serve-smoke: {message}", flush=True)


def post(addr, body, timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("POST", "/v1/optimize", json.dumps(body),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return (response.status, response.read().decode(),
                dict(response.getheaders()))
    finally:
        conn.close()


def get_json(addr, path, timeout=30):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_until(predicate, timeout=15.0, message="condition"):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.02)
    fail(f"timed out waiting for {message}")


def main():
    env = dict(os.environ)
    env.update({
        "PYTHONPATH": os.path.join(REPO, "src"),
        "PYTHONUNBUFFERED": "1",
        "REPRO_FAULTS": FAULTS,
        "REPRO_RETRY_BASE": "0.001",
        "REPRO_NO_CACHE": "1",
    })
    step("booting daemon under REPRO_FAULTS="
         + env["REPRO_FAULTS"])
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--max-inflight", "1", "--queue-depth", "0", "--no-journal",
         "--session", json.dumps({"dataset_size": 40,
                                  "llm_backend": "faulty"})],
        cwd=REPO, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            fail(f"no listening banner, got: {banner!r}")
        addr = (match.group(1), int(match.group(2)))
        step(f"daemon up at {addr[0]}:{addr[1]}")

        status, doc = get_json(addr, "/healthz")
        if status != 200 or doc.get("status") != "ok":
            fail(f"healthz: {status} {doc}")

        body = {"request": {"source": KERNEL}, "use_store": False}

        # 1. backend fails twice; retries must recover
        status, faulted, _ = post(addr, body)
        if status != 200:
            fail(f"fault-injected request: {status} {faulted[:200]}")
        if not json.loads(faulted)["result"]["passed"] in (True, False):
            fail("fault-injected request returned no verdict")
        step("request under injected faults recovered via retries")

        # 2. fault-free rerun must be byte-identical
        status, clean, _ = post(addr, body)
        if status != 200:
            fail(f"clean request: {status}")
        if clean != faulted:
            fail("retried result differs from fault-free result")
        status, metrics = get_json(addr, "/metrics")
        if metrics["counters"].get("retries_total", 0) < 2:
            fail(f"expected >=2 retries, metrics: "
                 f"{metrics['counters']}")
        step("retried result byte-identical to clean result "
             f"({metrics['counters']['retries_total']} retries)")

        # 3. overload: one slow in-flight + one over the queue limit
        slow = {}

        def run_slow():
            slow["response"] = post(addr, body)

        worker = threading.Thread(target=run_slow)
        worker.start()
        wait_until(
            lambda: get_json(addr, "/metrics")[1]["gauges"]["inflight"]
            >= 1, message="slow request to be in flight")
        status, text, headers = post(addr, body)
        if status != 503:
            fail(f"overflow request: expected 503, got {status}")
        error = json.loads(text)["error"]
        if error["kind"] != "overloaded" or "Retry-After" not in headers:
            fail(f"overflow rejection malformed: {error} {headers}")
        step(f"overflow rejected with 503, Retry-After="
             f"{headers['Retry-After']}")

        # 4. SIGTERM mid-flight: in-flight completes, daemon drains
        proc.send_signal(signal.SIGTERM)
        step("SIGTERM sent mid-flight")
        worker.join(timeout=120)
        if worker.is_alive():
            fail("in-flight request never completed during drain")
        status, text, _ = slow["response"]
        if status != 200:
            fail(f"in-flight request during drain: {status} "
                 f"{text[:200]}")
        if text != clean:
            fail("in-flight drain-time result differs")
        step("in-flight request completed cleanly during drain")

        code = proc.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code}, want 0")
        tail = proc.stdout.read()
        if "drained cleanly" not in tail:
            fail(f"missing drain banner in output: {tail!r}")
        step("daemon drained cleanly and exited 0")
        print("serve-smoke: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
