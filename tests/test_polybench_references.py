"""Numerical reference checks: PolyBench kernels vs straight NumPy.

These pin the *semantics* of the suite definitions — a mistranscribed
subscript or loop bound in a kernel would silently corrupt every
experiment built on it.
"""

import numpy as np
import pytest

from repro.runtime import allocate, run
from repro.suites import polybench


def _bench(name):
    return polybench().get(name)


def _fresh(name):
    bench = _bench(name)
    params = bench.test
    return bench, params, allocate(bench.program, params)


class TestLinearAlgebra:
    def test_2mm(self):
        bench, p, st = _fresh("2mm")
        tmp = 1.5 * st["A"] @ st["B"]
        D = st["D"] * 1.2 + tmp @ st["C"]
        out = run(bench.program, p).outputs
        assert np.allclose(out["D"], D)

    def test_3mm(self):
        bench, p, st = _fresh("3mm")
        G = (st["A"] @ st["B"]) @ (st["C"] @ st["D"])
        out = run(bench.program, p).outputs
        assert np.allclose(out["G"], G)

    def test_atax(self):
        bench, p, st = _fresh("atax")
        y = st["A"].T @ (st["A"] @ st["x"])
        out = run(bench.program, p).outputs
        assert np.allclose(out["y"], y)

    def test_bicg(self):
        bench, p, st = _fresh("bicg")
        s = st["A"].T @ st["r"]
        q = st["A"] @ st["p"]
        out = run(bench.program, p).outputs
        assert np.allclose(out["s"], s)
        assert np.allclose(out["q"], q)

    def test_mvt(self):
        bench, p, st = _fresh("mvt")
        x1 = st["x1"] + st["A"] @ st["y1"]
        x2 = st["x2"] + st["A"].T @ st["y2"]
        out = run(bench.program, p).outputs
        assert np.allclose(out["x1"], x1)
        assert np.allclose(out["x2"], x2)

    def test_gesummv(self):
        bench, p, st = _fresh("gesummv")
        y = 1.5 * (st["A"] @ st["x"]) + 1.2 * (st["B"] @ st["x"])
        out = run(bench.program, p).outputs
        assert np.allclose(out["y"], y)

    def test_gemver(self):
        bench, p, st = _fresh("gemver")
        A = st["A"] + np.outer(st["u1"], st["v1"]) \
            + np.outer(st["u2"], st["v2"])
        x = st["x"] + 1.2 * (A.T @ st["y"]) + st["z"]
        w = st["w"] + 1.5 * (A @ x)
        out = run(bench.program, p).outputs
        assert np.allclose(out["w"], w)

    def test_trisolv(self):
        bench, p, st = _fresh("trisolv")
        n = p["N"]
        L, b = st["L"], st["b"]
        x = np.zeros(n)
        for i in range(n):
            x[i] = (b[i] - L[i, :i] @ x[:i]) / L[i, i]
        out = run(bench.program, p).outputs
        assert np.allclose(out["x"], x)

    def test_trmm(self):
        bench, p, st = _fresh("trmm")
        m, n = p["M"], p["N"]
        A, B = st["A"], st["B"].copy()
        for i in range(m):
            for j in range(n):
                B[i, j] += A[i + 1:, i] @ B[i + 1:, j]
                B[i, j] *= 1.5
        out = run(bench.program, p).outputs
        assert np.allclose(out["B"], B)


class TestStencils:
    def test_jacobi_1d(self):
        bench, p, st = _fresh("jacobi-1d")
        A, B = st["A"].copy(), st["B"].copy()
        n = p["N"]
        for _t in range(p["T"]):
            B[1:n - 1] = 0.33333 * (A[:n - 2] + A[1:n - 1] + A[2:])
            A[1:n - 1] = 0.33333 * (B[:n - 2] + B[1:n - 1] + B[2:])
        out = run(bench.program, p).outputs
        assert np.allclose(out["A"], A)

    def test_seidel_2d_sequential_sweep(self):
        bench, p, st = _fresh("seidel-2d")
        A = st["A"].copy()
        n = p["N"]
        for _t in range(p["T"]):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    A[i, j] = 0.2 * (
                        A[i - 1, j - 1] + A[i - 1, j] + A[i - 1, j + 1]
                        + A[i, j - 1] + A[i, j] + A[i, j + 1]
                        + A[i + 1, j - 1] + A[i + 1, j]
                        + A[i + 1, j + 1]) / 2.0
        out = run(bench.program, p).outputs
        assert np.allclose(out["A"], A)

    def test_fdtd_2d(self):
        bench, p, st = _fresh("fdtd-2d")
        ex, ey, hz = st["ex"].copy(), st["ey"].copy(), st["hz"].copy()
        fict = st["fict"]
        for t in range(p["T"]):
            ey[0, :] = fict[t]
            ey[1:, :] -= 0.5 * (hz[1:, :] - hz[:-1, :])
            ex[:, 1:] -= 0.5 * (hz[:, 1:] - hz[:, :-1])
            hz[:-1, :-1] -= 0.7 * (ex[:-1, 1:] - ex[:-1, :-1]
                                   + ey[1:, :-1] - ey[:-1, :-1])
        out = run(bench.program, p).outputs
        assert np.allclose(out["hz"], hz)
        assert np.allclose(out["ex"], ex)
        assert np.allclose(out["ey"], ey)


class TestReductionsAndDP:
    def test_covariance_zero_mean_columns(self):
        bench, p, st = _fresh("covariance")
        data = st["data"].copy()
        mean = data.sum(axis=0) / 100.0
        data -= mean
        cov = np.zeros((p["M"], p["M"]))
        for i in range(p["M"]):
            for j in range(i, p["M"]):
                cov[i, j] = data[:, i] @ data[:, j]
                cov[j, i] = cov[i, j]
        out = run(bench.program, p).outputs
        assert np.allclose(out["cov"], cov)

    def test_floyd_warshall_arithmetic_variant(self):
        bench, p, st = _fresh("floyd-warshall")
        paths = st["paths"].copy()
        n = p["N"]
        for k in range(n):
            for i in range(n):
                for j in range(n):
                    paths[i, j] += 0.001 * paths[i, k] * paths[k, j]
        out = run(bench.program, p).outputs
        assert np.allclose(out["paths"], paths)

    def test_doitgen(self):
        bench, p, st = _fresh("doitgen")
        A, C4 = st["A"].copy(), st["C4"]
        for r in range(p["NR"]):
            for q in range(p["NQ"]):
                A[r, q, :] = A[r, q, :] @ C4
        out = run(bench.program, p).outputs
        assert np.allclose(out["A"], A)
