"""Evaluation-layer tests: metrics, harness caching, reporting, CLI."""

import os

import pytest

from repro.evaluation import (average_speedup, pass_at_k, percent_faster,
                              render_table, speedup_ratio)
from repro.evaluation.experiments import ExperimentResult


class TestMetrics:
    def test_pass_at_k_basic(self):
        assert pass_at_k([True, False, True, True]) == 75.0

    def test_pass_at_k_empty(self):
        assert pass_at_k([]) == 0.0

    def test_average_speedup_counts_failures(self):
        assert average_speedup([2.0, 0.0, 4.0]) == 2.0

    def test_average_speedup_excludes_outliers(self):
        # >600x entries are dropped entirely (the paper's rule)
        assert average_speedup([2.0, 700.0, 4.0]) == 3.0

    def test_average_speedup_cap_inclusive(self):
        assert average_speedup([600.0]) == 600.0

    def test_percent_faster(self):
        a = {"x": 2.0, "y": 1.0, "z": 5.0}
        b = {"x": 1.0, "y": 1.0, "z": 9.0}
        assert percent_faster(a, b) == pytest.approx(100 / 3)

    def test_percent_faster_disjoint(self):
        assert percent_faster({"x": 1.0}, {"y": 1.0}) == 0.0

    def test_speedup_ratio(self):
        assert speedup_ratio(10.0, 2.0) == 5.0
        assert speedup_ratio(1.0, 0.0) == float("inf")


class TestReporting:
    def test_render_aligns_columns(self):
        result = ExperimentResult(
            experiment="x", title="T",
            columns=("name", "value"),
            rows=(("alpha", 1.5), ("b", None)),
            notes=("hello",))
        text = render_table(result)
        assert "T" in text
        assert "alpha  1.50" in text
        assert "b      -" in text
        assert "note: hello" in text

    def test_render_all(self):
        from repro.evaluation import render_all
        r = ExperimentResult("x", "T", ("a",), ((1,),))
        assert render_all([r, r]).count("T") == 2


class TestHarnessCaching:
    def test_run_cache_hits(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_LIMIT", "3")
        from repro.evaluation.harness import run_compiler
        a = run_compiler("polybench", "graphite")
        b = run_compiler("polybench", "graphite")
        assert a is b

    def test_suite_limit_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_LIMIT", "4")
        from repro.evaluation.harness import suites
        assert all(len(s) == 4 for s in suites().values())

    def test_retriever_shared(self):
        from repro.evaluation.harness import shared_retriever
        assert shared_retriever(30, 5) is shared_retriever(30, 5)


class TestCli:
    def test_suites_command(self, capsys):
        from repro.cli import main
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        assert "polybench (30 kernels)" in out

    def test_experiment_unknown(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["experiment", "tab99"])

    def test_bad_binding_rejected(self, tmp_path):
        from repro.cli import main
        f = tmp_path / "k.scop"
        f.write_text("scop k(N) { array A[N] output; "
                     "for (i = 0; i < N; i++) A[i] = 1.0; }")
        with pytest.raises(SystemExit):
            main(["optimize", str(f), "--perf", "N:12"])

    def test_synthesize_command(self, capsys):
        from repro.cli import main
        assert main(["synthesize", "--size", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "10 examples" in out
        assert "tiling" in out

    def test_compilers_command(self, capsys, tmp_path):
        from repro.cli import main
        f = tmp_path / "k.scop"
        f.write_text("scop k(N) { array A[N] output; array B[N]; "
                     "for (i = 0; i < N; i++) A[i] = B[i] + 1.0; }")
        assert main(["compilers", str(f), "--perf", "N=100000"]) == 0
        out = capsys.readouterr().out
        assert "pluto" in out and "polly" in out
