"""Cross-module property-based tests (hypothesis).

The central invariant of the whole system: *any* transformation sequence
that passes the dependence-legality check leaves interpreted outputs
unchanged (up to FP reassociation).  We fuzz that over synthesized
programs and random intents.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import dependences, is_legal_schedule
from repro.ir.schedule import align_schedules
from repro.llm.adapt import Intent, materialize
from repro.runtime import run
from repro.synthesis import ExampleSynthesizer
from repro.transforms import TransformError, pad_statements

_SYNTH = ExampleSynthesizer(base_seed=777)
_PARAMS = {"N": 9}
_KINDS = ("tiling", "interchange", "fusion", "distribution", "skewing",
          "shifting", "reg_accum")


def _program(index: int):
    return _SYNTH.synthesize(index % 24)


def _outputs_close(a, b) -> bool:
    for name in a.outputs:
        if not np.allclose(a.outputs[name], b.outputs[name],
                           rtol=1e-5, atol=1e-7, equal_nan=True):
            return False
    return True


class TestLegalityImpliesEquivalence:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(index=st.integers(0, 200),
           kinds=st.lists(st.sampled_from(_KINDS), min_size=1, max_size=3),
           rng_seed=st.integers(0, 100))
    def test_legal_random_recipes_preserve_outputs(self, index, kinds,
                                                   rng_seed):
        program = _program(index)
        deps = dependences(program)
        reference = run(program, _PARAMS)
        candidate = program
        rng = random.Random(rng_seed)
        applied = 0
        for kind in kinds:
            step = materialize(Intent(kind=kind), candidate, rng)
            if step is None:
                continue
            try:
                trial = step.apply(candidate)
            except TransformError:
                continue
            if not is_legal_schedule(trial, deps):
                continue
            candidate = trial
            applied += 1
        if applied == 0:
            return
        result = run(candidate, _PARAMS)
        assert _outputs_close(reference, result), (
            f"legal recipe broke {program.name}: "
            f"{candidate.provenance}")

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(index=st.integers(0, 200))
    def test_original_program_is_always_legal(self, index):
        program = _program(index)
        assert is_legal_schedule(program, dependences(program))


class TestScheduleInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(index=st.integers(0, 200))
    def test_padding_does_not_change_outputs(self, index):
        program = _program(index)
        padded = pad_statements(program)
        a = run(program, _PARAMS)
        b = run(padded, _PARAMS)
        assert _outputs_close(a, b)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(index=st.integers(0, 200))
    def test_aligned_schedules_same_width(self, index):
        program = _program(index)
        widths = {len(s.dims)
                  for s in align_schedules(
                      [st_.schedule for st_ in program.statements])}
        assert len(widths) == 1

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(index=st.integers(0, 200), value=st.integers(6, 12))
    def test_instance_count_matches_domain(self, index, value):
        program = _program(index)
        params = {"N": value}
        expected = sum(s.domain.point_count(params)
                       for s in program.statements
                       if not s.guards)
        guarded = sum(1 for s in program.statements if s.guards)
        result = run(program, params, budget=500_000)
        if guarded == 0:
            assert result.instances == expected


class TestPrinterParserProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(index=st.integers(0, 200))
    def test_roundtrip_preserves_checksum(self, index):
        from repro.codegen import scop_body_to_c
        from repro.ir import parse_scop
        program = _program(index)
        body = scop_body_to_c(program)
        decls = []
        for decl in program.arrays:
            dims = "".join(f"[{d}]" for d in decl.dims)
            out = " output" if decl.name in program.outputs else ""
            decls.append(f"array {decl.name}{dims}{out};")
        source = (f"scop rt({', '.join(program.params)}) {{\n"
                  + "\n".join(decls) + "\n" + body + "\n}")
        reparsed = parse_scop(source)
        a = run(program, _PARAMS)
        b = run(reparsed, _PARAMS)
        assert a.checksum == pytest.approx(b.checksum)
