"""Compiler baseline tests: correctness, recipes and relative behaviour."""

import numpy as np
import pytest

from repro.analysis import dependences, is_legal_schedule
from repro.compilers import (BASE_COMPILERS, CLANG, GCC, ICX, Graphite,
                             IcxOptimizer, Perspective, Polly, Pluto)
from repro.ir import parse_scop
from repro.machine import estimate
from repro.runtime import run

BIG = {"NI": 1200, "NJ": 1200, "NK": 1200}
SMALL = {"NI": 7, "NJ": 6, "NK": 5}


def correct(original, optimized, params):
    a = run(original, params)
    b = run(optimized, params)
    return all(np.allclose(a.outputs[k], b.outputs[k]) for k in a.outputs)


class TestBaseCompilers:
    def test_gcc_vectorizes_stream(self, stream):
        out = GCC.finalize(stream)
        assert out.vector_dims == frozenset({1})

    def test_gcc_skips_recurrence(self, recur):
        assert GCC.finalize(recur).vector_dims == frozenset()

    def test_icx_vectorizes_reduction(self):
        p = parse_scop("""
        scop dot(N) {
          array S[N] output;
          array X[N];
          array Y[N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              S[i] += X[j] * Y[j];
        }
        """)
        assert GCC.finalize(p).vector_dims == frozenset()
        assert ICX.finalize(p).vector_dims == frozenset({3})

    def test_tiled_innermost_not_autovectorized(self, stream):
        from repro.transforms import tile
        t = tile(stream, [1], 32)
        assert GCC.finalize(t).vector_dims == frozenset()

    def test_finalize_idempotent(self, gemm):
        once = GCC.finalize(gemm)
        assert GCC.finalize(once).vector_dims == once.vector_dims

    def test_registry(self):
        assert set(BASE_COMPILERS) == {"gcc", "clang", "icx"}


class TestPluto:
    def test_gemm_recipe_shape(self, gemm):
        res = Pluto().optimize(gemm, BIG)
        assert res.ok
        kinds = res.recipe.kinds()
        assert "interchange" in kinds
        assert "fusion" in kinds
        assert "tiling" in kinds
        assert "parallel" in kinds

    def test_gemm_correct(self, gemm):
        res = Pluto().optimize(gemm, BIG)
        assert correct(gemm, res.program, SMALL)

    def test_gemm_big_speedup(self, gemm):
        res = Pluto().optimize(gemm, BIG)
        base = estimate(GCC.finalize(gemm), BIG).seconds
        opt = estimate(GCC.finalize(res.program), BIG).seconds
        assert base / opt > 10

    def test_syrk_reproduces_listing1(self, syrk):
        res = Pluto().optimize(syrk, {"N": 1200, "M": 1000})
        kinds = set(res.recipe.kinds())
        assert {"interchange", "fusion", "tiling", "parallel"} <= kinds
        assert correct(syrk, res.program, {"N": 8, "M": 5})

    def test_jacobi_parallel_not_tiled(self, jacobi2d):
        res = Pluto().optimize(jacobi2d, {"T": 100, "N": 1000})
        assert correct(jacobi2d, res.program, {"T": 2, "N": 7})
        assert res.program.parallel_dims

    def test_recurrence_untouched_parallel(self, recur):
        res = Pluto().optimize(recur, {"LEN": 100000})
        assert correct(recur, res.program, {"LEN": 17})
        assert not res.program.parallel_dims

    def test_legal_by_construction(self, gemm, syrk, jacobi2d, stream):
        for p in (gemm, syrk, jacobi2d, stream):
            res = Pluto().optimize(p, {k: 600 for k in p.params})
            assert is_legal_schedule(res.program, dependences(p))


class TestPolly:
    def test_dummy_call_fails_scop_detection(self, stream):
        tagged = stream.with_tags("dummy-call")
        res = Polly().optimize(tagged, {"LEN": 1000})
        assert not res.ok and "scop" in res.failure

    def test_pure_annotation_recovers(self, stream):
        tagged = stream.with_tags("dummy-call", "pure-annotated")
        assert Polly().optimize(tagged, {"LEN": 1000}).ok

    def test_gemm_correct(self, gemm):
        res = Polly().optimize(gemm, BIG)
        assert res.ok and correct(gemm, res.program, SMALL)

    def test_weaker_than_pluto_on_gemm(self, gemm):
        pluto_t = estimate(GCC.finalize(
            Pluto().optimize(gemm, BIG).program), BIG).seconds
        polly_t = estimate(CLANG.finalize(
            Polly().optimize(gemm, BIG).program), BIG).seconds
        assert pluto_t <= polly_t * 1.5


class TestGraphite:
    def test_dummy_call_fails(self, stream):
        res = Graphite().optimize(stream.with_tags("dummy-call"),
                                  {"LEN": 100})
        assert not res.ok

    def test_pure_annotation_triggers_dce(self, stream):
        res = Graphite().optimize(
            stream.with_tags("dummy-call", "pure-annotated"), {"LEN": 100})
        assert not res.ok and "dce" in res.failure

    def test_bails_on_flow_dependence(self, gemm):
        res = Graphite().optimize(gemm, BIG)
        assert res.ok and not res.recipe  # emits the original

    def test_parallelizes_doall(self, stream):
        res = Graphite().optimize(stream, {"LEN": 100000})
        assert res.ok and res.program.parallel_dims


class TestPerspective:
    def test_profiling_timeout_on_huge_loop(self, stream):
        res = Perspective().optimize(stream, {"LEN": 5_000_000_000})
        assert not res.ok and "timeout" in res.failure

    def test_speculates_over_war(self):
        # carried WAR only: privatization/speculation makes this DOALL
        p = parse_scop("""
        scop shiftup(N) {
          array A[N] output;
          for (i = 0; i < N - 1; i++)
            A[i] = A[i + 1] * 2.0;
        }
        """)
        res = Perspective().optimize(p, {"N": 100000})
        assert res.ok and res.program.parallel_dims

    def test_dep_dense_kernel_fails_analysis(self):
        # LU-style elimination: dozens of dependence classes overwhelm
        # the validation planner
        p = parse_scop("""
        scop lu_like(N) {
          array A[N][N] output;
          array b[N];
          array x[N] output;
          array y[N];
          for (i = 0; i < N; i++) {
            for (j = 0; j < i; j++) {
              for (k = 0; k < j; k++)
                A[i][j] -= A[i][k] * A[k][j];
              A[i][j] = A[i][j] / A[j][j];
            }
            for (j = i; j < N; j++)
              for (k = 0; k < i; k++)
                A[i][j] -= A[i][k] * A[k][j];
          }
          for (i = 0; i < N; i++) {
            y[i] = b[i];
            for (j = 0; j < i; j++)
              y[i] -= A[i][j] * y[j];
            x[i] = y[i] + 1.0;
          }
        }
        """)
        res = Perspective().optimize(p, {"N": 1000})
        assert not res.ok and "analysis" in res.failure

    def test_flow_dependence_blocks_speculation(self, recur):
        res = Perspective().optimize(recur, {"LEN": 200000})
        assert not res.ok and "speculation" in res.failure

    def test_correct_when_it_succeeds(self, stream):
        res = Perspective().optimize(stream, {"LEN": 200000})
        assert res.ok and correct(stream, res.program, {"LEN": 50})


class TestIcx:
    def test_vectorizes_only(self, gemm):
        res = IcxOptimizer().optimize(gemm, BIG)
        assert res.ok
        assert not res.program.parallel_dims
        assert res.program.vector_dims
