"""The native compiled-kernel tier: cache, toolchain, fallback ladder.

Covers the parts of ``REPRO_ENGINE=native`` the equivalence suite does
not reach: on-disk kernel cache behaviour (key stability, cross-process
sharing under a compile race, corrupt-``.so`` recovery,
``REPRO_NO_CACHE``), the per-statement refusal-and-fallback list, the
no-toolchain degradation warning, and the cache hygiene surfaced through
``repro store``.
"""

import ctypes
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.codegen.ckernel import emit_module
from repro.ir import parse_scop
from repro.runtime import allocate, checksum, engine_override, execute
from repro.runtime import native
from repro.runtime.native import (find_toolchain, kernel_cache_gc,
                                  kernel_cache_key, kernel_cache_report,
                                  kernel_stats, native_context)

needs_toolchain = pytest.mark.skipif(
    find_toolchain() is None,
    reason="no C toolchain discovered (REPRO_CC/cc/gcc/clang)")

GEMM = """
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
"""

RECURRENCE = """
scop rec(N) {
  array X[N] output;
  for (i = 1; i < N; i++)
    X[i] = X[i-1] * 1.01 + 0.25;
}
"""


#: runs GEMM under the native engine and prints the checksum — used by
#: the subprocess-based cache tests (compile race, corrupt recovery)
_RUN_SNIPPET = (
    "import numpy as np\n"
    "from repro.ir import parse_scop\n"
    "from repro.runtime import allocate, checksum, execute\n"
    "from repro.runtime import engine_override\n"
    f"prog = parse_scop({GEMM!r})\n"
    "params = {'NI': 8, 'NJ': 7, 'NK': 6}\n"
    "with engine_override('native'):\n"
    "    st = allocate(prog, params, 2)\n"
    "    execute(prog, params, st)\n"
    "print(repr(checksum(st, prog.outputs)))\n")


@pytest.fixture
def kernel_cache(tmp_path, monkeypatch):
    """A fresh kernel cache dir, with in-process caches forgotten."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    native._clear_caches()
    yield tmp_path
    native._clear_caches()


def run_engine(program, params, engine, variant=0):
    with engine_override(engine):
        storage = allocate(program, params, variant)
        execute(program, params, storage)
    return {name: storage[name].copy() for name in program.outputs}


class TestEmission:
    def test_cache_key_is_stable(self):
        program = parse_scop(GEMM)
        first = emit_module(program)
        second = emit_module(parse_scop(GEMM))
        assert first.source == second.source
        tc = find_toolchain()
        if tc is not None:
            assert (kernel_cache_key(first.source, tc)
                    == kernel_cache_key(second.source, tc))

    def test_refusal_list_matches_vector_policy(self):
        # exp has no last-ulp-exact C lowering; the statement must be
        # refused with a reason, exactly like the NumPy vector path
        src = """
        scop funcs(N) {
          array A[N] output;
          array B[N];
          for (i = 0; i < N; i++)
            A[i] = exp(B[i]) + 1.0;
        }
        """
        module = emit_module(parse_scop(src))
        assert module.statements == ()
        assert not module.has_whole
        assert len(module.refusals) == 1
        assert "exp" in module.refusals[0][1]

    def test_rank_mismatch_refused(self):
        src = """
        scop rank(N) {
          array A[N][N] output;
          array B[N];
          for (i = 0; i < N; i++)
            A[i][i] = B[i][i] + 1.0;
        }
        """
        module = emit_module(parse_scop(src))
        assert module.statements == ()
        assert any("rank" in reason for _, reason in module.refusals)

    def test_mixed_program_keeps_lowering_what_it_can(self):
        src = """
        scop mixed(N) {
          array A[N] output;
          array B[N] output;
          for (i = 0; i < N; i++) {
            A[i] = sqrt(B[i]) * 2.0;
            B[i] = exp(A[i]);
          }
        }
        """
        module = emit_module(parse_scop(src))
        assert len(module.statements) == 1
        assert len(module.refusals) == 1
        assert not module.has_whole  # whole-nest needs every statement

    def test_tiled_schedule_refuses_whole_nest_only(self):
        from repro.transforms import tile

        program = tile(parse_scop(GEMM), [1], 4)
        module = emit_module(program)
        assert not module.has_whole
        assert len(module.statements) == 2  # span kernels still emitted


@needs_toolchain
class TestKernelCache:
    def test_disk_cache_shared_and_hit(self, kernel_cache):
        program = parse_scop(GEMM)
        params = {"NI": 6, "NJ": 7, "NK": 5}
        before = kernel_stats()
        ref = run_engine(program, params, "reference", 1)
        got = run_engine(program, params, "native", 1)
        assert np.array_equal(ref["C"], got["C"])
        after = kernel_stats()
        assert after["compiles"] == before["compiles"] + 1
        sos = list((kernel_cache / "kernels").glob("*.so"))
        assert len(sos) == 1
        # a fresh in-process cache (a restarted worker) loads from disk
        native._clear_caches()
        before = kernel_stats()
        got = run_engine(program, params, "native", 1)
        assert np.array_equal(ref["C"], got["C"])
        after = kernel_stats()
        assert after["compiles"] == before["compiles"]
        assert after["disk_hits"] == before["disk_hits"] + 1

    def test_concurrent_processes_share_one_so(self, kernel_cache):
        env = dict(os.environ,
                   PYTHONPATH="src",
                   REPRO_CACHE_DIR=str(kernel_cache))
        env.pop("REPRO_NO_CACHE", None)
        procs = [subprocess.Popen([sys.executable, "-c", _RUN_SNIPPET],
                                  stdout=subprocess.PIPE, env=env,
                                  cwd=str(Path(__file__).parent.parent))
                 for _ in range(2)]
        outputs = [p.communicate(timeout=120)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)
        assert outputs[0] == outputs[1]
        sos = list((kernel_cache / "kernels").glob("*.so"))
        assert len(sos) == 1, "racing processes must share one install"
        assert not list((kernel_cache / "kernels").glob("*.tmp.*"))

    def test_corrupt_so_recovered(self, kernel_cache):
        # a crashed writer leaves a truncated install behind; the next
        # *process* to come along must evict and rebuild it.  (In-place
        # corruption of a library already dlopen'd by this process is
        # not a real scenario — installs always go through rename, so a
        # loaded .so's inode is immutable.)
        env = dict(os.environ,
                   PYTHONPATH="src",
                   REPRO_CACHE_DIR=str(kernel_cache))
        env.pop("REPRO_NO_CACHE", None)
        cwd = str(Path(__file__).parent.parent)
        first = subprocess.run([sys.executable, "-c", _RUN_SNIPPET],
                               capture_output=True, env=env, cwd=cwd,
                               timeout=120)
        assert first.returncode == 0, first.stderr
        [so] = (kernel_cache / "kernels").glob("*.so")
        so.write_bytes(b"\x7fELF-not-really")
        second = subprocess.run([sys.executable, "-c", _RUN_SNIPPET],
                                capture_output=True, env=env, cwd=cwd,
                                timeout=120)
        assert second.returncode == 0, second.stderr
        assert first.stdout == second.stdout
        ctypes.CDLL(str(so))  # the rebuilt install is loadable again

    def test_no_cache_env_compiles_to_tempdir(self, kernel_cache,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        program = parse_scop(RECURRENCE)
        params = {"N": 40}
        ref = run_engine(program, params, "reference")
        before = kernel_stats()
        got = run_engine(program, params, "native")
        after = kernel_stats()
        assert np.array_equal(ref["X"], got["X"])
        assert after["compiles"] == before["compiles"] + 1
        assert not (kernel_cache / "kernels").exists()

    def test_recurrence_runs_on_native_span_kernel(self, kernel_cache):
        # the sequential C walk handles the loop-carried dependence the
        # NumPy block executor must demote to per-instance Python steps
        program = parse_scop(RECURRENCE)
        params = {"N": 300}
        ref = run_engine(program, params, "reference")
        got = run_engine(program, params, "native")
        assert np.array_equal(ref["X"], got["X"])


@needs_toolchain
class TestCacheHygiene:
    def test_store_report_counts_kernels(self, kernel_cache):
        program = parse_scop(GEMM)
        run_engine(program, {"NI": 4, "NJ": 4, "NK": 4}, "native")
        report = kernel_cache_report()
        assert report["kernels"] == 1
        assert report["bytes"] > 0
        tc = find_toolchain()
        assert report["toolchain"] == tc.signature
        assert report["signatures"] == {tc.signature: 1}
        assert report["stale"] == 0

    def test_gc_drops_stale_toolchain_kernels(self, kernel_cache):
        program = parse_scop(GEMM)
        run_engine(program, {"NI": 4, "NJ": 4, "NK": 4}, "native")
        kernels = kernel_cache / "kernels"
        [meta] = kernels.glob("*.json")
        # forge a kernel left behind by an older compiler
        stale_key = "0" * 32
        (kernels / f"{stale_key}.so").write_bytes(b"old")
        (kernels / f"{stale_key}.c").write_text("/* old */")
        (kernels / f"{stale_key}.json").write_text(
            json.dumps({"signature": "deadbeefdeadbeef"}))
        report = kernel_cache_report()
        assert report["kernels"] == 2
        assert report["stale"] == 1
        result = kernel_cache_gc()
        assert result == {"removed": 1, "kept": 1,
                          "reclaimed_bytes": result["reclaimed_bytes"]}
        assert result["reclaimed_bytes"] > 0
        assert not (kernels / f"{stale_key}.so").exists()
        assert meta.exists()
        # the surviving kernel still loads and runs
        native._clear_caches()
        before = kernel_stats()
        run_engine(program, {"NI": 4, "NJ": 4, "NK": 4}, "native")
        after = kernel_stats()
        assert after["compiles"] == before["compiles"]


class TestDegradation:
    def test_missing_toolchain_warns_once_and_falls_back(
            self, kernel_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        native._WARNED.discard("/nonexistent/cc")
        native._TOOLCHAIN_CACHE.pop("/nonexistent/cc", None)
        program = parse_scop(GEMM)
        params = {"NI": 5, "NJ": 6, "NK": 4}
        ref = run_engine(program, params, "reference")
        with pytest.warns(RuntimeWarning, match="no usable C toolchain"):
            with engine_override("native"):
                storage = allocate(program, params, 0)
                execute(program, params, storage)
        assert np.array_equal(ref["C"], storage["C"])
        # the warning fires once per override value, not per execute
        import warnings as _w
        with _w.catch_warnings():
            _w.simplefilter("error")
            got = run_engine(program, params, "native")
        assert np.array_equal(ref["C"], got["C"])
        assert not (kernel_cache / "kernels").exists()

    def test_explicit_override_never_substitutes_probed_cc(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        native._TOOLCHAIN_CACHE.pop("/nonexistent/cc", None)
        assert find_toolchain() is None
