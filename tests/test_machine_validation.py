"""Cross-validation: analytical model vs trace-driven cache simulator.

The analytical model must agree with ground-truth LRU simulation on the
direction (and rough magnitude) of every locality effect the evaluation
relies on.
"""

import pytest

from repro.ir import parse_scop
from repro.machine import MachineModel, estimate, simulate_trace
from repro.transforms import fuse, interchange, tile

SMALL = {"NI": 24, "NJ": 24, "NK": 24}
TINY_CACHE = 1024  # bytes — forces capacity misses at small sizes


def trace_misses(p, params, cache=TINY_CACHE):
    return simulate_trace(p, params, capacity_bytes=cache).misses


def model_misses(p, params, cache=TINY_CACHE):
    machine = MachineModel(cache_bytes=cache, l1_bytes=cache // 2)
    return estimate(p, params, machine).total_misses


class TestDirectionalAgreement:
    def test_tiling_reduces_misses_in_both(self, gemm):
        t = tile(gemm, [1, 3, 5], 4, stmts=["S2"])
        assert trace_misses(t, SMALL) < trace_misses(gemm, SMALL)
        assert model_misses(t, SMALL) < model_misses(gemm, SMALL)

    def test_bad_interchange_hurts_in_both(self, gemm):
        bad = interchange(gemm, 3, 5)  # k innermost
        assert trace_misses(bad, SMALL) > 1.5 * trace_misses(gemm, SMALL)
        assert model_misses(bad, SMALL) > 1.5 * model_misses(gemm, SMALL)

    def test_streaming_miss_rate(self, stream):
        params = {"LEN": 4096}
        res = simulate_trace(stream, params, capacity_bytes=TINY_CACHE)
        # 3 arrays, unit stride, 8B elements, 64B lines -> 1/8 per access
        assert res.miss_rate == pytest.approx(1 / 8, rel=0.05)
        model = model_misses(stream, params)
        assert model == pytest.approx(res.misses, rel=0.25)

    def test_temporal_reuse_detected_in_model(self):
        p = parse_scop("""
        scop dot(N) {
          array S[N] output;
          array X[N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              S[i] += X[j] * 2.0;
        }
        """)
        params = {"N": 64}
        res = simulate_trace(p, params, capacity_bytes=8192)
        # X fits in cache: one cold sweep, then hits
        assert res.misses < 0.02 * res.accesses
        model = model_misses(p, params, cache=8192)
        assert model < 0.02 * (64 * 64 * 2)


class TestMagnitudeAgreement:
    @pytest.mark.parametrize("transform", ["none", "tile", "interchange"])
    def test_within_factor_four(self, gemm, transform):
        p = gemm
        if transform == "tile":
            p = tile(gemm, [1, 3, 5], 8, stmts=["S2"])
        elif transform == "interchange":
            p = interchange(gemm, 3, 5)
        t = trace_misses(p, SMALL)
        m = model_misses(p, SMALL)
        assert m / t < 4.0 and t / m < 4.0


class TestLRUCacheUnit:
    def test_hit_after_touch(self):
        from repro.machine import LRUCache
        c = LRUCache(1024, 64)
        assert not c.touch(0)
        assert c.touch(8)  # same line

    def test_eviction_order(self):
        from repro.machine import LRUCache
        c = LRUCache(128, 64)  # 2 lines
        c.touch(0)
        c.touch(64)
        c.touch(0)      # refresh line 0
        c.touch(128)    # evicts line 1
        assert c.touch(0)
        assert not c.touch(64)

    def test_too_small_rejected(self):
        from repro.machine import LRUCache
        with pytest.raises(ValueError):
            LRUCache(32, 64)
