"""The deterministic fault-injection harness (``REPRO_FAULTS``)."""

import json
import time

import pytest

from repro.api import OptimizationRequest, OptimizerSession
from repro.api.resilience import (RetryPolicy, install_resilient_llm,
                                  reset_resilience)
from repro.ir import parse_scop
from repro.testing.faults import (FaultClause, FaultInjected, FaultPlan,
                                  FaultTimeout, MalformedReply,
                                  active_plan, install_plan, maybe_fault,
                                  register_fault_backends)

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""


@pytest.fixture(autouse=True)
def _clean_plan():
    install_plan(None)
    reset_resilience()
    yield
    install_plan(None)
    reset_resilience()


class TestSpecParsing:
    def test_defaults_to_once(self):
        plan = FaultPlan.parse("llm.generate:raise")
        [clause] = plan.clauses
        assert clause == FaultClause("llm.generate", "raise")
        assert clause.times == 1

    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "llm.generate:delay:seconds=0.2:always;"
            "compiler.optimize:malformed:every=3:after=2")
        first, second = plan.clauses
        assert first.kind == "delay"
        assert first.seconds == 0.2
        assert first.times is None  # always
        assert second.every == 3
        assert second.after == 2

    def test_describe_round_trips_the_clauses(self):
        plan = FaultPlan.parse("a:raise:times=2;b:timeout")
        assert plan.describe() == [
            {"site": "a", "kind": "raise", "times": 2, "every": None,
             "after": 0, "seconds": 0.05},
            {"site": "b", "kind": "timeout", "times": 1, "every": None,
             "after": 0, "seconds": 0.05},
        ]

    def test_process_kinds_and_their_options(self):
        plan = FaultPlan.parse(
            "worker.execute:kill;"
            "worker.execute:exit:code=7;"
            "worker.execute:oom:mb=64;"
            "worker.execute:hang")
        kill, exit_, oom, hang = plan.clauses
        assert kill.kind == "kill"
        assert exit_.code == 7
        assert oom.megabytes == 64
        # a hang must outlive any watchdog timeout, not default to the
        # 50ms delay sleep
        assert hang.seconds == 3600.0
        assert FaultPlan.parse(
            "w:hang:seconds=2").clauses[0].seconds == 2.0
        assert FaultPlan.parse(
            "w:oom:megabytes=128").clauses[0].megabytes == 128

    def test_describe_includes_process_options(self):
        plan = FaultPlan.parse("w:exit:code=9;w:oom:mb=32")
        exit_doc, oom_doc = plan.describe()
        assert exit_doc["code"] == 9
        assert "megabytes" not in exit_doc
        assert oom_doc["megabytes"] == 32
        assert "code" not in oom_doc

    @pytest.mark.parametrize("spec", [
        "llm.generate",                 # no kind
        "llm.generate:explode",         # unknown kind
        "llm.generate:raise:bogus",     # bare option that isn't always
        "llm.generate:raise:count=2",   # unknown option
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestSchedule:
    def fired(self, spec, site, calls):
        plan = FaultPlan.parse(spec)
        outcomes = []
        for _ in range(calls):
            try:
                plan.check(site)
            except Exception:
                outcomes.append(True)
            else:
                outcomes.append(False)
        return outcomes

    def test_times_budget(self):
        assert self.fired("s:raise:times=2", "s", 5) == \
            [True, True, False, False, False]

    def test_always(self):
        assert self.fired("s:raise:always", "s", 3) == [True] * 3

    def test_every_kth_call(self):
        assert self.fired("s:raise:every=3", "s", 7) == \
            [False, False, True, False, False, True, False]

    def test_after_skips_warmup(self):
        assert self.fired("s:raise:after=2:times=1", "s", 5) == \
            [False, False, True, False, False]

    def test_sites_are_independent(self):
        plan = FaultPlan.parse("a:raise:times=1")
        plan.check("b")  # different site: no fault, no budget consumed
        with pytest.raises(FaultInjected):
            plan.check("a")
        assert plan.counts() == (("a:raise", 1, 1),)

    def test_schedule_is_deterministic(self):
        spec = "s:raise:every=2:after=1"
        runs = [self.fired(spec, "s", 9) for _ in range(2)]
        assert runs[0] == runs[1]

    def test_due_consumes_the_schedule_without_executing(self):
        # the worker supervisor's entry point: parent-side accounting,
        # clause execution shipped elsewhere
        plan = FaultPlan.parse("w:kill:times=1;w:exit:after=1")
        first = plan.due("w")
        assert [c.kind for c in first] == ["kill"]  # nothing executed
        second = plan.due("w")
        assert [c.kind for c in second] == ["exit"]
        assert plan.due("w") == []
        assert plan.counts() == (("w:kill", 3, 1), ("w:exit", 3, 1))

    def test_check_never_executes_process_kinds_in_process(self):
        # a process clause reaching an in-process site must be a no-op:
        # it may only fire inside a supervised worker.  If this test
        # survives, the daemon (and this test runner) cannot be killed
        # by a mis-sited kill/exit/oom/hang clause.
        plan = FaultPlan.parse(
            "s:kill:always;s:exit:always;s:oom:always;s:hang:always")
        plan.check("s")  # still alive, did not hang
        # ... but the schedule accounting advanced all the same
        assert all(calls == 1 and injected == 1
                   for _, calls, injected in plan.counts())


class TestFaultKinds:
    def test_raise_is_transient_connection_error(self):
        install_plan(FaultPlan.parse("s:raise"))
        with pytest.raises(FaultInjected) as excinfo:
            maybe_fault("s")
        assert isinstance(excinfo.value, ConnectionError)
        assert excinfo.value.transient is True

    def test_timeout(self):
        install_plan(FaultPlan.parse("s:timeout"))
        with pytest.raises(FaultTimeout) as excinfo:
            maybe_fault("s")
        assert isinstance(excinfo.value, TimeoutError)
        assert excinfo.value.transient is True

    def test_malformed(self):
        install_plan(FaultPlan.parse("s:malformed"))
        with pytest.raises(MalformedReply) as excinfo:
            maybe_fault("s")
        assert excinfo.value.transient is True
        assert "garbage" in excinfo.value.payload

    def test_delay_sleeps_and_falls_through(self):
        install_plan(FaultPlan.parse("s:delay:seconds=0.05"))
        start = time.monotonic()
        maybe_fault("s")  # must not raise
        assert time.monotonic() - start >= 0.05

    def test_injected_oom_raises_memory_error_even_under_no_limit(self):
        # deterministic: allocates ~8MB then raises instead of gambling
        # on the host actually running out of memory
        from repro.testing.faults import apply_process_fault
        clause = FaultPlan.parse("s:oom:mb=8").clauses[0]
        with pytest.raises(MemoryError):
            apply_process_fault(clause)

    def test_apply_process_fault_rejects_in_process_kinds(self):
        from repro.testing.faults import apply_process_fault
        with pytest.raises(ValueError):
            apply_process_fault(FaultClause("s", "raise"))


class TestActivePlan:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        maybe_fault("anything")

    def test_installed_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s:raise:always")
        pinned = FaultPlan.parse("other:raise")
        install_plan(pinned)
        assert active_plan() is pinned

    def test_env_plan_is_cached_so_counters_persist(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s:raise:times=1")
        assert active_plan() is active_plan()
        with pytest.raises(FaultInjected):
            maybe_fault("s")
        maybe_fault("s")  # budget of 1 already spent
        assert active_plan().counts() == (("s:raise", 2, 1),)

    def test_env_plan_refreshes_on_spec_change(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s:raise:times=1")
        first = active_plan()
        monkeypatch.setenv("REPRO_FAULTS", "s:timeout:times=1")
        second = active_plan()
        assert second is not first
        assert second.clauses[0].kind == "timeout"


class TestInjectedBackends:
    def test_register_is_idempotent(self):
        from repro.api.registry import LLM_BACKENDS, OPTIMIZER_REGISTRY

        register_fault_backends()
        register_fault_backends()
        assert "faulty" in LLM_BACKENDS.names()
        assert "faulty-pluto" in OPTIMIZER_REGISTRY.names()

    def test_injected_faults_never_change_results(self):
        """The headline determinism contract.

        A run whose ``llm.generate`` calls fail twice and get retried
        must produce the byte-identical result document of a fault-free
        run: faults fire before the inner model consumes randomness.
        """
        register_fault_backends()
        alias = install_resilient_llm(
            "faulty", RetryPolicy(attempts=4, base=0.0001, cap=0.0005))
        session = OptimizerSession(dataset_size=40, llm_backend=alias)
        request = OptimizationRequest.make(
            parse_scop(KERNEL), {"N": 1500}, {"N": 8},
            system="looprag", persona="deepseek")

        clean = session.optimize(request, use_store=False)
        plan = FaultPlan.parse("llm.generate:raise:times=2")
        install_plan(plan)
        faulted = session.optimize(request, use_store=False)

        site, calls, injected = plan.counts()[0]
        assert site == "llm.generate:raise"
        assert injected == 2
        assert calls > injected  # the retried calls went through
        assert json.dumps(faulted.to_json_dict(), sort_keys=True) == \
            json.dumps(clean.to_json_dict(), sort_keys=True)
