"""Semantics-preservation and error tests for all loop transformations.

The key invariant: a transformation kept by the legality checker must leave
interpreted outputs bit-identical.  Conversely, transformations flagged
illegal are allowed to (and usually do) change outputs — that asymmetry is
what differential testing in the pipeline relies on.
"""

import numpy as np
import pytest

from repro.analysis import dependences, is_legal_schedule
from repro.ir import parse_scop
from repro.runtime import run
from repro.transforms import (TransformError, TransformRecipe, TransformStep,
                              accumulate_in_register, distribute, fuse,
                              interchange, parallelize, shift, skew, tile,
                              vectorize)

GEMM_PARAMS = {"NI": 6, "NJ": 5, "NK": 4}
SYRK_PARAMS = {"N": 8, "M": 5}


def outputs_equal(p, q, params):
    a = run(p, params)
    b = run(q, params)
    return all(np.allclose(a.outputs[k], b.outputs[k]) for k in a.outputs)


class TestInterchange:
    def test_preserves_when_legal(self, gemm):
        t = interchange(gemm, 3, 5, stmts=["S2"])
        assert outputs_equal(gemm, t, GEMM_PARAMS)

    def test_illegal_changes_output(self, recur):
        # no second loop: interchange must refuse entirely
        with pytest.raises(TransformError):
            interchange(recur, 1, 1)

    def test_identity_columns_rejected(self, gemm):
        with pytest.raises(TransformError):
            interchange(gemm, 2, 2)

    def test_const_only_columns_rejected(self, gemm):
        with pytest.raises(TransformError):
            interchange(gemm, 0, 2)

    def test_out_of_range(self, gemm):
        with pytest.raises(TransformError):
            interchange(gemm, 1, 99)

    def test_unknown_statement(self, gemm):
        with pytest.raises(TransformError):
            interchange(gemm, 1, 3, stmts=["S9"])


class TestTiling:
    @pytest.mark.parametrize("size", [2, 3, 8])
    def test_single_loop_tile_preserves(self, stream, size):
        t = tile(stream, [1], size)
        assert outputs_equal(stream, t, {"LEN": 23})

    def test_band_tile_preserves(self, syrk):
        # align S2 (k<->j) then fuse, then tiling the i/j band is legal
        p = interchange(syrk, 3, 5, stmts=["S2"])
        p = fuse(p, 2)
        t = tile(p, [1, 3], 4)
        assert is_legal_schedule(t, dependences(syrk))
        assert outputs_equal(syrk, t, SYRK_PARAMS)

    def test_recurrence_tile_still_correct(self, recur):
        # tiling a sequential loop keeps relative order (floor is monotone)
        t = tile(recur, [1], 4)
        assert outputs_equal(recur, t, {"LEN": 19})

    def test_tile_size_one_rejected(self, stream):
        with pytest.raises(TransformError):
            tile(stream, [1], 1)

    def test_band_must_increase(self, gemm):
        with pytest.raises(TransformError):
            tile(gemm, [3, 1], 4)

    def test_size_count_mismatch(self, gemm):
        with pytest.raises(TransformError):
            tile(gemm, [1, 3], [4])

    def test_pragmas_shift_on_insert(self, stream):
        p = parallelize(stream, 1)
        t = tile(p, [1], 8)
        assert t.parallel_dims == frozenset({2})


class TestFusionDistribution:
    def test_fuse_then_distribute_roundtrip(self, jacobi2d):
        f = fuse(jacobi2d, 2)
        d = distribute(f, 2)
        # jacobi fusion is illegal; but fuse->distribute must restore a
        # total order equivalent to the original program
        assert outputs_equal(jacobi2d, d, {"T": 2, "N": 7})

    def test_fusion_on_loop_column_rejected(self, jacobi2d):
        with pytest.raises(TransformError):
            fuse(jacobi2d, 1)

    def test_fusion_needs_two_statements(self, stream):
        with pytest.raises(TransformError):
            fuse(stream, 0)

    def test_already_fused_rejected(self, jacobi2d):
        f = fuse(jacobi2d, 2)
        with pytest.raises(TransformError):
            fuse(f, 2)

    def test_gemm_fusion_after_alignment_preserves(self, gemm):
        p = interchange(gemm, 3, 5, stmts=["S2"])
        f = fuse(p, 2)
        assert is_legal_schedule(f, dependences(gemm))
        assert outputs_equal(gemm, f, GEMM_PARAMS)

    def test_distribute_gemm_statements(self, gemm):
        d = distribute(gemm, 0)
        assert outputs_equal(gemm, d, GEMM_PARAMS)


class TestSkewShift:
    def test_skew_preserves_semantics(self, jacobi2d):
        # skewing i by t is a legal wavefront reindexing
        s = skew(jacobi2d, 3, 1, 1)
        assert is_legal_schedule(s, dependences(jacobi2d))
        assert outputs_equal(jacobi2d, s, {"T": 2, "N": 7})

    def test_skew_zero_factor_rejected(self, jacobi2d):
        with pytest.raises(TransformError):
            skew(jacobi2d, 3, 1, 0)

    def test_skew_same_column_rejected(self, jacobi2d):
        with pytest.raises(TransformError):
            skew(jacobi2d, 3, 3, 1)

    def test_shift_preserves_when_legal(self, jacobi2d):
        s = shift(jacobi2d, "S2", 1, 0) if False else shift(
            jacobi2d, "S2", 3, 2)
        # shifting S2's i dimension delays it; legality may or may not hold,
        # but the *executed* program must match the schedule order exactly.
        deps = dependences(jacobi2d)
        if is_legal_schedule(s, deps):
            assert outputs_equal(jacobi2d, s, {"T": 2, "N": 7})

    def test_shift_zero_rejected(self, jacobi2d):
        with pytest.raises(TransformError):
            shift(jacobi2d, "S1", 1, 0)

    def test_shift_const_column_rejected(self, jacobi2d):
        with pytest.raises(TransformError):
            shift(jacobi2d, "S1", 0, 1)


class TestPragmas:
    def test_parallel_marks_column(self, stream):
        p = parallelize(stream, 1)
        assert p.parallel_dims == frozenset({1})

    def test_parallel_twice_rejected(self, stream):
        with pytest.raises(TransformError):
            parallelize(parallelize(stream, 1), 1)

    def test_vectorize_marks_column(self, stream):
        v = vectorize(stream, 1)
        assert v.vector_dims == frozenset({1})

    def test_pragma_does_not_change_semantics(self, gemm):
        p = vectorize(parallelize(gemm, 1), 5)
        assert outputs_equal(gemm, p, GEMM_PARAMS)

    def test_const_column_rejected(self, gemm):
        with pytest.raises(TransformError):
            parallelize(gemm, 0)


class TestRegAccum:
    def test_marks_reduction(self, gemm):
        # S2's innermost loop is j and C[i][j] varies with j -> refuse
        with pytest.raises(TransformError):
            accumulate_in_register(gemm, "S2")

    def test_accepts_k_inner_reduction(self, gemm):
        p = interchange(gemm, 3, 5, stmts=["S2"])  # j middle, k inner
        a = accumulate_in_register(p, "S2")
        assert a.statement("S2").reg_accum
        assert outputs_equal(gemm, a, GEMM_PARAMS)

    def test_plain_assign_rejected(self, stream):
        with pytest.raises(TransformError):
            accumulate_in_register(stream, "S1")


class TestRecipes:
    def test_apply_sequence(self, gemm):
        recipe = TransformRecipe.of(
            TransformStep.make("interchange", col_a=3, col_b=5,
                               stmts=["S2"]),
            TransformStep.make("fusion", col=2),
            TransformStep.make("tiling", columns=[1, 3], sizes=[4, 4]),
            TransformStep.make("parallel", col=1),
        )
        out = recipe.apply(gemm)
        assert outputs_equal(gemm, out, GEMM_PARAMS)
        assert out.parallel_dims == frozenset({1})

    def test_kinds_deduplicated(self):
        r = TransformRecipe.of(
            TransformStep.make("tiling", columns=[1], sizes=[4]),
            TransformStep.make("tiling", columns=[2], sizes=[4]))
        assert r.kinds() == ("tiling",)

    def test_try_apply_skips_bad_steps(self, stream):
        recipe = TransformRecipe.of(
            TransformStep.make("fusion", col=0),     # needs 2 statements
            TransformStep.make("parallel", col=1))
        out, skipped = recipe.try_apply(stream)
        assert skipped == [0]
        assert out.parallel_dims == frozenset({1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(TransformError):
            TransformStep.make("loop-unswitching", col=1)

    def test_without(self):
        r = TransformRecipe.of(
            TransformStep.make("parallel", col=1),
            TransformStep.make("vectorize", col=1))
        assert r.without(0).steps[0].kind == "vectorize"
