"""Smoke-run every documented entry point under ``examples/``.

API refactors must not silently break the scripts the README points
people at.  Each script honours ``REPRO_EXAMPLE_SIZE`` so the corpora
stay tiny here; they share one cache directory so the corpus is built
once across scripts.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


@pytest.fixture(scope="module")
def example_env(tmp_path_factory):
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env["REPRO_EXAMPLE_SIZE"] = "30"
    env["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("example_cache"))
    return env


def test_every_example_is_covered():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names and "batch_service.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs(script, example_env):
    proc = subprocess.run(
        [sys.executable, str(script)], cwd=str(REPO), env=example_env,
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (
        f"{script.name} failed\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script.name} printed nothing"
