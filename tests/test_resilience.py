"""Retry/backoff, circuit breakers, and the resilient registry wrappers."""

import pytest

from repro.api.registry import LLM_BACKENDS, OPTIMIZER_REGISTRY
from repro.api.resilience import (RESILIENCE_BUS, CircuitBreaker,
                                  CircuitOpenError, ResilientCall,
                                  RetryPolicy, breaker_for, breaker_states,
                                  install_resilient_llm,
                                  install_resilient_optimizer, is_transient,
                                  reset_resilience)
from repro.cancellation import Cancelled
from repro.compilers import OPTIMIZER_BASE
from repro.testing.faults import (FaultPlan, install_plan,
                                  register_fault_backends)

FAST = RetryPolicy(attempts=4, base=0.0001, cap=0.0005)


@pytest.fixture(autouse=True)
def _clean_resilience():
    reset_resilience()
    install_plan(None)
    yield
    install_plan(None)
    reset_resilience()


@pytest.fixture()
def bus_events():
    collected = []
    unsubscribe = RESILIENCE_BUS.subscribe(collected.append)
    yield collected
    unsubscribe()


class TestRetryPolicy:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_RETRY_BASE", "0.25")
        policy = RetryPolicy.from_env()
        assert policy.attempts == 7
        assert policy.base == 0.25
        # explicit overrides beat the environment
        assert RetryPolicy.from_env(attempts=2).attempts == 2

    def test_transience_classification(self):
        policy = RetryPolicy()
        assert is_transient(ConnectionError("x"), policy)
        assert is_transient(TimeoutError("x"), policy)

        class Weird(Exception):
            transient = True

        assert is_transient(Weird(), policy)
        assert not is_transient(ValueError("x"), policy)
        assert not is_transient(Cancelled(), policy)
        assert not is_transient(CircuitOpenError("s", 1.0), policy)


class TestResilientCall:
    def test_retries_then_succeeds_with_events(self, bus_events):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("nope")
            return "ok"

        slept = []
        call = ResilientCall("test:site", policy=FAST, sleep=slept.append)
        assert call(flaky) == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2
        assert [e.kind for e in bus_events] == ["retry", "retry"]
        assert bus_events[0].get("site") == "test:site"
        assert bus_events[0].get("attempt") == 1
        assert call.breaker.state == CircuitBreaker.CLOSED

    def test_backoff_is_deterministic_and_bounded(self):
        def delays_of(site):
            slept = []
            call = ResilientCall(site, policy=FAST, sleep=slept.append,
                                 breaker=CircuitBreaker(site, 100))
            with pytest.raises(ConnectionError):
                call(lambda: (_ for _ in ()).throw(ConnectionError()))
            return slept

        first = delays_of("test:jitter")
        second = delays_of("test:jitter")
        assert first == second  # same site+seed, same schedule
        assert len(first) == FAST.attempts - 1
        assert all(FAST.base <= d <= FAST.cap for d in first)

    def test_non_transient_raises_immediately(self, bus_events):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("permanent")

        call = ResilientCall("test:site", policy=FAST,
                             sleep=lambda s: None)
        with pytest.raises(ValueError):
            call(broken)
        assert calls["n"] == 1
        assert bus_events == []
        assert call.breaker.state == CircuitBreaker.CLOSED

    def test_gives_up_after_attempts(self, bus_events):
        calls = {"n": 0}

        def always_down():
            calls["n"] += 1
            raise TimeoutError("down")

        call = ResilientCall("test:site", policy=FAST,
                             breaker=CircuitBreaker("test:site", 100),
                             sleep=lambda s: None)
        with pytest.raises(TimeoutError):
            call(always_down)
        assert calls["n"] == FAST.attempts
        kinds = [e.kind for e in bus_events]
        assert kinds == ["retry", "retry", "retry", "retry_give_up"]
        assert bus_events[-1].get("attempts") == FAST.attempts

    def test_breaker_trip_short_circuits_retries(self, bus_events):
        calls = {"n": 0}

        def always_down():
            calls["n"] += 1
            raise ConnectionError("down")

        breaker = CircuitBreaker("test:trip", failure_threshold=2)
        call = ResilientCall("test:trip", policy=FAST, breaker=breaker,
                             sleep=lambda s: None)
        with pytest.raises(ConnectionError):
            call(always_down)
        # gave up as soon as the breaker tripped, not after attempts
        assert calls["n"] == 2
        assert breaker.state == CircuitBreaker.OPEN
        kinds = [e.kind for e in bus_events]
        assert "breaker_open" in kinds and "retry_give_up" in kinds

        # subsequent calls fail fast without touching the function
        with pytest.raises(CircuitOpenError) as excinfo:
            call(always_down)
        assert calls["n"] == 2
        assert excinfo.value.site == "test:trip"
        assert excinfo.value.retry_after > 0


class TestCircuitBreaker:
    def test_trip_probe_close_cycle(self, bus_events):
        now = [0.0]
        breaker = CircuitBreaker("test:cycle", failure_threshold=2,
                                 reset_timeout=10.0,
                                 clock=lambda: now[0])
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert 0 < excinfo.value.retry_after <= 10.0

        now[0] = 10.0
        breaker.allow()  # becomes the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

        kinds = [e.kind for e in bus_events]
        assert kinds == ["breaker_open", "breaker_half_open",
                         "breaker_close"]

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker("test:reopen", failure_threshold=1,
                                 reset_timeout=5.0, clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 5.0
        breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # clock has not advanced again

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker("test:streak", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # streak broken

    def test_registry_and_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_BREAKER_RESET", "7.5")
        breaker = breaker_for("test:env")
        assert breaker.failure_threshold == 2
        assert breaker.reset_timeout == 7.5
        assert breaker_for("test:env") is breaker
        assert breaker_states() == {"test:env": "closed"}
        reset_resilience()
        assert breaker_states() == {}


class TestRegistryWrappers:
    def test_install_resilient_llm_registers_alias(self):
        alias = install_resilient_llm("simulated", FAST)
        assert alias == "resilient:simulated"
        assert "resilient:simulated" in LLM_BACKENDS.names()
        # idempotent, and already-wrapped names pass through
        assert install_resilient_llm("simulated", FAST) == alias
        assert install_resilient_llm(alias) == alias

    def test_resilient_optimizer_retries_injected_faults(self, gemm,
                                                         bus_events):
        register_fault_backends()
        alias = install_resilient_optimizer("pluto", FAST)
        assert alias == "resilient:pluto"
        wrapper = OPTIMIZER_REGISTRY.get(alias)()
        assert wrapper.base_compiler == OPTIMIZER_BASE["pluto"]
        params = {p: 8 for p in gemm.params}
        clean = wrapper.optimize(gemm, params)

        faulty_alias = install_resilient_optimizer("faulty-pluto", FAST)
        faulty = OPTIMIZER_REGISTRY.get(faulty_alias)()
        plan = FaultPlan.parse("compiler.optimize:raise:times=1")
        install_plan(plan)
        retried = faulty.optimize(gemm, params)
        assert plan.counts() == (("compiler.optimize:raise", 2, 1),)
        assert retried.ok == clean.ok
        retry_events = [e for e in bus_events if e.kind == "retry"]
        assert [e.get("site") for e in retry_events] == \
            ["compiler:faulty-pluto"]
