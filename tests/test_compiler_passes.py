"""Unit tests for the individual optimizer passes (compilers.passes)."""

import pytest

from repro.analysis import dependences, is_legal_schedule
from repro.compilers.passes import (align_statement_loops,
                                    best_band_permutation,
                                    distribute_for_tiling, fuse_greedily,
                                    parallelize_outermost,
                                    tile_shared_band, tile_statement_tails,
                                    vectorize_innermost)
from repro.ir import parse_scop
from repro.transforms import shared_band


class TestAlign:
    def test_syrk_alignment(self, syrk):
        deps = dependences(syrk)
        out, steps = align_statement_loops(syrk, deps)
        assert steps, "the k/j interchange of §2.2 must be found"
        assert steps[0].kind == "interchange"
        assert steps[0].arg_dict()["stmts"] == ["S2"]
        assert is_legal_schedule(out, deps)

    def test_already_aligned_untouched(self, jacobi2d):
        deps = dependences(jacobi2d)
        _out, steps = align_statement_loops(jacobi2d, deps)
        assert steps == []

    def test_single_statement_untouched(self, stream):
        _out, steps = align_statement_loops(stream, dependences(stream))
        assert steps == []


class TestFuse:
    def test_gemm_fusion_after_alignment(self, gemm):
        deps = dependences(gemm)
        aligned, _ = align_statement_loops(gemm, deps)
        fused, steps = fuse_greedily(aligned, deps)
        assert any(s.kind == "fusion" for s in steps)
        assert is_legal_schedule(fused, deps)

    def test_illegal_fusion_skipped(self, jacobi2d):
        deps = dependences(jacobi2d)
        fused, steps = fuse_greedily(jacobi2d, deps, allow_shift=False)
        assert steps == []  # jacobi sweeps cannot fuse without shifting

    def test_shift_enabled_fusion(self):
        p = parse_scop("""
        scop sh(N) {
          array A[N] output;
          array B[N] output;
          for (i = 2; i < N - 2; i++)
            A[i] = B[i] + 1.0;
          for (i = 2; i < N - 2; i++)
            B[i] = A[i + 1] * 2.0;
        }
        """)
        deps = dependences(p)
        fused, steps = fuse_greedily(p, deps, allow_shift=True)
        kinds = [s.kind for s in steps]
        assert "shifting" in kinds and "fusion" in kinds
        assert is_legal_schedule(fused, deps)


class TestPermutation:
    def test_bad_order_fixed(self):
        p = parse_scop("""
        scop colmaj(N) {
          array A[N][N] output;
          array B[N][N];
          for (j = 0; j < N; j++)
            for (i = 0; i < N; i++)
              A[i][j] = B[i][j] * 2.0;
        }
        """)
        deps = dependences(p)
        out, steps = best_band_permutation(p, deps, {"N": 2000})
        assert steps, "column-major traversal should be permuted"
        assert is_legal_schedule(out, deps)

    def test_good_order_kept(self, stream):
        deps = dependences(stream)
        _out, steps = best_band_permutation(stream, deps, {"LEN": 100000})
        assert steps == []


class TestTiling:
    def test_band_tiled(self, syrk):
        deps = dependences(syrk)
        aligned, _ = align_statement_loops(syrk, deps)
        fused, _ = fuse_greedily(aligned, deps)
        tiled, steps = tile_shared_band(fused, deps, 32)
        assert steps and steps[-1].kind == "tiling"
        assert is_legal_schedule(tiled, deps)

    def test_skew_fallback(self):
        p = parse_scop("""
        scop diag(N) {
          array A[N+2][N+2] output;
          for (i = 2; i < N; i++)
            for (j = 2; j < N; j++)
              A[i][j] = A[i-1][j+1] + 1.0;
        }
        """)
        deps = dependences(p)
        tiled, steps = tile_shared_band(p, deps, 32, allow_skew=True)
        kinds = [s.kind for s in steps]
        assert "skewing" in kinds and "tiling" in kinds
        assert is_legal_schedule(tiled, deps)

    def test_tails_tiled_after_band(self, gemm):
        deps = dependences(gemm)
        aligned, _ = align_statement_loops(gemm, deps)
        fused, _ = fuse_greedily(aligned, deps)
        banded, _ = tile_shared_band(fused, deps, 32)
        tailed, steps = tile_statement_tails(banded, deps, 32)
        assert steps and steps[0].arg_dict()["stmts"] == ["S2"]
        assert is_legal_schedule(tailed, deps)

    def test_distribute_for_tiling(self):
        p = parse_scop("""
        scop dt(N) {
          array A[N][N] output;
          array B[N][N] output;
          for (i = 2; i < N - 2; i++)
            for (j = 2; j < N - 2; j++) {
              A[i][j] = B[i][j] + 1.0;
              B[i][j] = A[i - 1][j + 2] * 2.0;
            }
        }
        """)
        deps = dependences(p)
        out, steps = distribute_for_tiling(p, deps, 32)
        kinds = [s.kind for s in steps]
        assert "distribution" in kinds and "tiling" in kinds
        assert is_legal_schedule(out, deps)


class TestPragmaPasses:
    def test_parallelize_outermost_legal(self, gemm):
        deps = dependences(gemm)
        out, steps = parallelize_outermost(gemm, deps)
        assert steps and steps[0].arg_dict()["col"] == 1
        assert out.parallel_dims == frozenset({1})

    def test_parallelize_skips_recurrence(self, recur):
        deps = dependences(recur)
        _out, steps = parallelize_outermost(recur, deps)
        assert steps == []

    def test_vectorize_innermost_reduction_gate(self):
        p = parse_scop("""
        scop dot(N) {
          array s[2] output;
          array a[N];
          for (i = 0; i < N; i++)
            s[0] += a[i] * a[i];
        }
        """)
        deps = dependences(p)
        _out, no_red = vectorize_innermost(p, deps,
                                           allow_reductions=False)
        out, with_red = vectorize_innermost(p, deps,
                                            allow_reductions=True)
        assert no_red == []
        assert with_red and out.vector_dims == frozenset({1})
