"""Analytical cost model behaviour tests.

These pin the *directional* behaviour the evaluation shapes depend on:
locality transformations reduce modeled misses, parallelism scales compute
but is bandwidth-capped, tiling small flat loops is a (mild) pessimisation.
"""

import pytest

from repro.ir import parse_scop
from repro.machine import (DEFAULT_MACHINE, MachineModel, build_view,
                           estimate, estimate_cached)
from repro.transforms import (interchange, parallelize, tile, vectorize)

BIG = {"NI": 1200, "NJ": 1200, "NK": 1200}


class TestLoopView:
    def test_gemm_view_trips(self, gemm):
        view = build_view(gemm, gemm.statements[1], BIG)
        assert [round(l.trip) for l in view.loops] == [1200, 1200, 1200]
        assert view.total_iters == pytest.approx(1200 ** 3)

    def test_tiled_view_has_tile_loops(self, gemm):
        t = tile(gemm, [1], 32)
        view = build_view(t, t.statements[1], BIG)
        assert view.loops[0].is_tile
        assert view.loops[0].trip == pytest.approx(38, abs=1)
        assert view.loops[1].trip == pytest.approx(32, rel=0.05)

    def test_triangular_correction(self, syrk):
        view = build_view(syrk, syrk.statements[0], {"N": 1000, "M": 1000})
        # j <= i halves the rectangular count
        assert view.total_iters < 0.75 * 1000 * 1000
        assert view.total_iters > 0.25 * 1000 * 1000

    def test_guard_fraction(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 4)
              A[i] = 1.0;
        }
        """)
        from repro.machine import estimate_guard_fraction
        frac = estimate_guard_fraction(p.statements[0], {"N": 8})
        assert frac == pytest.approx(0.5)


class TestLocalityEffects:
    def test_bad_interchange_costs_more(self, gemm):
        bad = interchange(gemm, 3, 5)  # k innermost: B walks columns
        assert estimate(bad, BIG).cycles > 2 * estimate(gemm, BIG).cycles

    def test_tiling_reduces_misses(self, gemm):
        t = tile(gemm, [1, 3, 5], 32, stmts=["S2"])
        assert estimate(t, BIG).total_misses < \
            0.5 * estimate(gemm, BIG).total_misses

    def test_reg_accum_reduces_cost(self, gemm):
        from repro.transforms import accumulate_in_register
        p = interchange(gemm, 3, 5, stmts=["S2"])  # k innermost
        a = accumulate_in_register(p, "S2")
        assert estimate(a, BIG).cycles <= estimate(p, BIG).cycles


class TestParallelEffects:
    def test_parallel_speeds_up(self, gemm):
        p = parallelize(gemm, 1)
        assert estimate(p, BIG).seconds < 0.2 * estimate(gemm, BIG).seconds

    def test_memory_bound_capped(self, stream):
        big = {"LEN": 8_000_000}
        base = estimate(stream, big).seconds
        par = estimate(parallelize(stream, 1), big).seconds
        speedup = base / par
        assert 2.0 < speedup < 1.5 * DEFAULT_MACHINE.mem_parallel_cap

    def test_compute_bound_scales_further(self, gemm):
        t = tile(gemm, [1, 3, 5], 32)
        par = parallelize(t, 1)
        speedup = estimate(t, BIG).seconds / estimate(par, BIG).seconds
        assert speedup > DEFAULT_MACHINE.mem_parallel_cap

    def test_tiny_trip_parallel_overhead(self):
        p = parse_scop("""
        scop tiny(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            A[i] = A[i] + 1.0;
        }
        """)
        small = {"N": 4}
        par = parallelize(p, 1)
        assert estimate(par, small).cycles > estimate(p, small).cycles


class TestVectorEffects:
    def test_unit_stride_vectorization_helps(self, stream):
        big = {"LEN": 4_000_000}
        machine = MachineModel(miss_penalty=2.0)  # compute-bound variant
        v = vectorize(stream, 1)
        assert estimate(v, big, machine).cycles < \
            0.55 * estimate(stream, big, machine).cycles

    def test_gather_loop_gets_no_benefit(self):
        p = parse_scop("""
        scop col(N) {
          array A[N][N] output;
          array B[N][N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              A[j][i] = B[j][i] * 2.0;
        }
        """)
        big = {"N": 1500}
        v = vectorize(p, 3)
        assert estimate(v, big).cycles == pytest.approx(
            estimate(p, big).cycles, rel=0.01)

    def test_tile_entry_overhead_charged(self, stream):
        big = {"LEN": 4_000_000}
        t = tile(stream, [1], 32)
        assert estimate(t, big).cycles > estimate(stream, big).cycles


class TestCaching:
    def test_cache_returns_same_object(self, gemm):
        a = estimate_cached(gemm, BIG)
        b = estimate_cached(gemm, BIG)
        assert a is b

    def test_different_machines_not_conflated(self, gemm):
        a = estimate_cached(gemm, BIG, DEFAULT_MACHINE)
        b = estimate_cached(gemm, BIG, DEFAULT_MACHINE.with_threads(4))
        assert a is not b
