"""Persistent corpus cache: build -> persist -> reload, bit-identically.

`cached_dataset` keeps corpora on disk under `<cache-dir>/datasets/`
keyed by `dataset_signature()`; a corpus served from disk must be
indistinguishable from a freshly built one — same signature, same
indexed texts, same properties, and bit-identical retrieval ranks.
"""

import json

import pytest

import repro.synthesis.dataset as dataset_mod
from repro.ir import parse_scop
from repro.retrieval import Retriever
from repro.synthesis import cached_dataset, dataset_signature

SIZE, SEED = 10, 31


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setattr(dataset_mod, "_DATASET_CACHE", {})
    return tmp_path


PROBE = """
scop probe(N) {
  array A[N][N] output;
  array B[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] += B[j][i] * 2.0;
}
"""


def ranks(dataset):
    probe = parse_scop(PROBE)
    retriever = Retriever(dataset)
    out = {}
    for method in ("loop-aware", "bm25", "weighted"):
        out[method] = [(demo.entry.name, demo.score)
                       for demo in retriever.rank(probe, method)]
    return out


class TestPersistentCache:
    def test_build_persists_then_reloads(self, isolated_cache,
                                         monkeypatch):
        built = cached_dataset(SIZE, SEED)
        files = list((isolated_cache / "datasets").glob("*.json"))
        assert len(files) == 1
        assert dataset_signature(SIZE, SEED) in files[0].name

        calls = []
        monkeypatch.setattr(dataset_mod, "build_dataset",
                            lambda *a, **k: calls.append(a) or
                            pytest.fail("should load from disk"))
        monkeypatch.setattr(dataset_mod, "_DATASET_CACHE", {})
        loaded = cached_dataset(SIZE, SEED)
        assert not calls
        assert len(loaded) == len(built)
        assert loaded.generator == built.generator
        assert loaded.seed == built.seed
        for a, b in zip(built, loaded):
            assert a.name == b.name
            assert a.example_text == b.example_text
            assert a.optimized_text == b.optimized_text
            assert a.recipe == b.recipe
            assert a.properties == b.properties
        # the signature is a pure function of (key, sources): identical
        assert dataset_signature(SIZE, SEED) == dataset_signature(SIZE,
                                                                  SEED)

    def test_retrieval_ranks_bit_identical(self, isolated_cache):
        built = cached_dataset(SIZE, SEED)
        dataset_mod._DATASET_CACHE.clear()
        loaded = cached_dataset(SIZE, SEED)
        assert built is not loaded
        assert ranks(built) == ranks(loaded)

    def test_in_process_cache_still_shared(self, isolated_cache):
        assert cached_dataset(SIZE, SEED) is cached_dataset(SIZE, SEED)

    def test_no_cache_disables_disk_layer(self, isolated_cache,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cached_dataset(SIZE, SEED)
        assert not list(isolated_cache.glob("datasets/*.json"))

    def test_corrupt_file_rebuilds(self, isolated_cache):
        cached_dataset(SIZE, SEED)
        [path] = (isolated_cache / "datasets").glob("*.json")
        path.write_text("{ truncated garbage")
        dataset_mod._DATASET_CACHE.clear()
        rebuilt = cached_dataset(SIZE, SEED)
        assert len(rebuilt) == SIZE
        # the rebuild rewrote a valid file
        [path] = (isolated_cache / "datasets").glob("*.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == 2
        assert len(payload["entries"]) == SIZE
