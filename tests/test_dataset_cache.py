"""Persistent corpus cache: build -> persist -> reload, bit-identically.

`cached_dataset` keeps corpora in the ``"datasets"`` stream of the
shared artifact store (`<cache-dir>/store/`) keyed by
`dataset_signature()`; a corpus served from the store must be
indistinguishable from a freshly built one — same signature, same
indexed texts, same properties, and bit-identical retrieval ranks.
Pre-sharding per-corpus files (`<cache-dir>/datasets/*.json`) are
absorbed transparently on first load.
"""

import json
import os

import pytest

import repro.synthesis.dataset as dataset_mod
from repro.evaluation import store as result_store_mod
from repro.evaluation.store import active_artifacts
from repro.ir import parse_scop
from repro.retrieval import Retriever
from repro.synthesis import cached_dataset, dataset_signature, save_dataset
from repro.synthesis.dataset import DATASETS_STREAM, _dataset_cache_key

SIZE, SEED = 10, 31


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    # every scenario here is backend-agnostic: inherit an ambient
    # REPRO_STORE_BACKEND (the CI store-stress matrix sets it)
    monkeypatch.setenv("REPRO_STORE_BACKEND",
                       os.environ.get("REPRO_STORE_BACKEND") or "local")
    monkeypatch.setattr(dataset_mod, "_DATASET_CACHE", {})
    result_store_mod._STORES.clear()
    yield tmp_path
    result_store_mod._STORES.clear()


def forget_memory():
    """Simulate a new process: drop both in-memory layers."""
    dataset_mod._DATASET_CACHE.clear()
    result_store_mod._STORES.clear()


def refuse_build(monkeypatch):
    monkeypatch.setattr(
        dataset_mod, "build_dataset",
        lambda *a, **k: pytest.fail("should load from the store"))


PROBE = """
scop probe(N) {
  array A[N][N] output;
  array B[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] += B[j][i] * 2.0;
}
"""


def ranks(dataset):
    probe = parse_scop(PROBE)
    retriever = Retriever(dataset)
    out = {}
    for method in ("loop-aware", "bm25", "weighted"):
        out[method] = [(demo.entry.name, demo.score)
                       for demo in retriever.rank(probe, method)]
    return out


class TestPersistentCache:
    def test_build_persists_then_reloads(self, isolated_cache,
                                         monkeypatch):
        built = cached_dataset(SIZE, SEED)
        [key] = active_artifacts().list(DATASETS_STREAM)
        assert dataset_signature(SIZE, SEED) in key

        forget_memory()
        refuse_build(monkeypatch)
        loaded = cached_dataset(SIZE, SEED)
        assert len(loaded) == len(built)
        assert loaded.generator == built.generator
        assert loaded.seed == built.seed
        for a, b in zip(built, loaded):
            assert a.name == b.name
            assert a.example_text == b.example_text
            assert a.optimized_text == b.optimized_text
            assert a.recipe == b.recipe
            assert a.properties == b.properties
        # the signature is a pure function of (key, sources): identical
        assert dataset_signature(SIZE, SEED) == dataset_signature(SIZE,
                                                                  SEED)

    def test_retrieval_ranks_bit_identical(self, isolated_cache):
        built = cached_dataset(SIZE, SEED)
        forget_memory()
        loaded = cached_dataset(SIZE, SEED)
        assert built is not loaded
        assert ranks(built) == ranks(loaded)

    def test_in_process_cache_still_shared(self, isolated_cache):
        assert cached_dataset(SIZE, SEED) is cached_dataset(SIZE, SEED)

    def test_no_cache_disables_disk_layer(self, isolated_cache,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cached_dataset(SIZE, SEED)
        assert not (isolated_cache / "store").exists()
        assert not list(isolated_cache.glob("datasets/*.json"))

    def test_corrupt_payload_rebuilds(self, isolated_cache):
        cached_dataset(SIZE, SEED)
        key = _dataset_cache_key(SIZE, SEED, "looprag")
        active_artifacts().append(DATASETS_STREAM, key,
                                  {"format": -1, "entries": "garbage"})
        forget_memory()
        rebuilt = cached_dataset(SIZE, SEED)
        assert len(rebuilt) == SIZE
        # the rebuild republished a valid payload over the bad one
        payload = active_artifacts().read(DATASETS_STREAM, key)
        assert payload["format"] == 2
        assert len(payload["entries"]) == SIZE
        stats = active_artifacts().stream_stats(DATASETS_STREAM)
        assert stats.superseded == 2  # bad overwrite + rebuild

    def test_legacy_corpus_file_absorbed(self, isolated_cache,
                                         monkeypatch):
        """A pre-sharding `<cache>/datasets/<key>.json` corpus loads
        without a rebuild and lands in the datasets stream."""
        built = cached_dataset(SIZE, SEED)
        key = _dataset_cache_key(SIZE, SEED, "looprag")
        legacy_dir = isolated_cache / "datasets"
        legacy_dir.mkdir()
        save_dataset(built, legacy_dir / f"{key}.json")
        active_artifacts().drop(DATASETS_STREAM)

        forget_memory()
        refuse_build(monkeypatch)
        loaded = cached_dataset(SIZE, SEED)
        assert ranks(loaded) == ranks(built)
        assert active_artifacts().contains(DATASETS_STREAM, key)
        # absorbed payload round-trips through the store byte-identically
        stored = active_artifacts().read(DATASETS_STREAM, key)
        on_disk = json.loads((legacy_dir / f"{key}.json").read_text())
        assert json.dumps(stored, sort_keys=True) == \
            json.dumps(on_disk, sort_keys=True)
