"""The ``repro serve`` daemon, end to end over real HTTP.

Every robustness claim is exercised against a live in-process daemon
with deterministic injected faults: overload answers 503 +
``Retry-After``, deadlines answer 504, transient backend failures are
retried to a byte-identical result, persistent failures trip the
breaker into fail-fast, and drain lets in-flight work finish.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import OptimizationRequest, OptimizerSession
from repro.api.resilience import reset_resilience
from repro.cancellation import Cancelled, CancelToken
from repro.ir import parse_scop
from repro.serve import (AdmissionController, BadRequest, Metrics,
                         Rejected, ServeConfig, ServeDaemon)
from repro.testing.faults import FaultPlan, install_plan

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def _request(addr, method, path, body=None, headers=None, timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        base = {"Content-Type": "application/json"}
        base.update(headers or {})
        conn.request(method, path, payload, base)
        resp = conn.getresponse()
        return resp.status, resp.read().decode(), dict(resp.getheaders())
    finally:
        conn.close()


def _post(addr, body, headers=None, timeout=120):
    return _request(addr, "POST", "/v1/optimize", body, headers, timeout)


def _get(addr, path):
    status, text, headers = _request(addr, "GET", path)
    return status, json.loads(text), headers


def _stream(addr, body, timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("POST", "/v1/optimize", json.dumps(body),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        lines = [line.decode().strip() for line in resp
                 if line.strip()]
        return resp.status, lines
    finally:
        conn.close()


def _wait_until(predicate, timeout=10.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _canonical_request():
    return OptimizationRequest.make(
        parse_scop(KERNEL), {"N": 1500}, {"N": 8},
        system="looprag", persona="deepseek")


@pytest.fixture()
def make_daemon(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BASE", "0.001")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_resilience()
    install_plan(None)
    daemons = []

    def make(**overrides):
        options = dict(host="127.0.0.1", port=0, max_inflight=4,
                       queue_depth=4, per_client=4, drain_grace=10.0,
                       journal=False,
                       default_session={"dataset_size": 40})
        options.update(overrides)
        daemon = ServeDaemon(ServeConfig(**options))
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield make
    install_plan(None)
    for daemon in daemons:
        daemon.stop(timeout=30)
    reset_resilience()


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz_metrics_and_404(self, make_daemon):
        daemon = make_daemon()
        status, doc, _ = _get(daemon.address, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["inflight"] == 0

        status, doc, _ = _get(daemon.address, "/metrics")
        assert status == 200
        assert set(doc) == {"counters", "gauges", "latency"}
        assert doc["gauges"]["inflight"] == 0
        assert doc["gauges"]["draining"] is False
        assert set(doc["latency"]) == {"count", "p50_ms", "p95_ms",
                                       "max_ms"}

        status, doc, _ = _get(daemon.address, "/nope")
        assert status == 404
        assert doc["error"]["kind"] == "not_found"

    def test_bad_requests_answer_400_and_never_kill_the_daemon(
            self, make_daemon):
        daemon = make_daemon()
        cases = [
            {},                                      # no request at all
            {"request": {"source": "scop ((("}},     # unparseable SCoP
            {"request": {"source": KERNEL},
             "session": {"bogus_knob": 1}},          # unknown field
        ]
        for body in cases:
            status, text, _ = _post(daemon.address, body)
            assert status == 400
            assert json.loads(text)["error"]["kind"] == "bad_request"

        conn = http.client.HTTPConnection(*daemon.address, timeout=30)
        try:  # syntactically invalid JSON body
            conn.request("POST", "/v1/optimize", "not json at all",
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            assert json.loads(resp.read())["error"]["kind"] == \
                "bad_request"
        finally:
            conn.close()

        status, doc, _ = _get(daemon.address, "/healthz")
        assert status == 200 and doc["status"] == "ok"
        assert daemon.metrics.get("failed_total") == 4


# ----------------------------------------------------------------------
# the headline contract: daemon results == in-process results
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_daemon_result_matches_in_process_optimize(self,
                                                       make_daemon):
        daemon = make_daemon()
        status, text, _ = _post(daemon.address, {
            "request": {"source": KERNEL}, "use_store": False})
        assert status == 200

        session = OptimizerSession(dataset_size=40)
        result = session.optimize(_canonical_request(), use_store=False)
        expected = json.dumps(result.to_json_dict(), indent=2,
                              sort_keys=True)
        assert text == expected


# ----------------------------------------------------------------------
# admission: overload and per-client push-back
# ----------------------------------------------------------------------
class TestAdmissionOverHTTP:
    def test_overload_answers_503_with_retry_after(self, make_daemon):
        daemon = make_daemon(max_inflight=1, queue_depth=0)
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.03:always"))
        slow = {}

        def run_slow():
            slow["response"] = _post(daemon.address, {
                "request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "deadline_s": 60, "use_store": False})

        worker = threading.Thread(target=run_slow)
        worker.start()
        assert _wait_until(lambda: daemon.admission.inflight >= 1)

        status, text, headers = _post(daemon.address, {
            "request": {"source": KERNEL}, "use_store": False})
        assert status == 503
        doc = json.loads(text)
        assert doc["error"]["kind"] == "overloaded"
        assert headers["Retry-After"] == str(doc["error"]["retry_after"])
        assert int(headers["Retry-After"]) >= 1

        worker.join(timeout=60)
        status, text, _ = slow["response"]
        assert status == 200  # the in-flight request was untouched
        assert daemon.metrics.get("rejected_overloaded_total") == 1

    def test_sequential_reposts_never_race_the_released_slot(
            self, make_daemon):
        # the reply is written only after the admission slot is
        # released: a client that has read its response and re-posts
        # immediately must never collide with its own previous slot,
        # even at max_inflight=1 with no queue
        daemon = make_daemon(max_inflight=1, queue_depth=0)
        body = {"request": {"source": KERNEL}, "use_store": False}
        for _ in range(25):
            status, _, _ = _post(daemon.address, body)
            assert status == 200
        assert daemon.metrics.get("rejected_overloaded_total") == 0

    def test_per_client_limit(self, make_daemon):
        daemon = make_daemon(per_client=1, max_inflight=4,
                             queue_depth=4)
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.03:always"))
        alice = {"X-Client-Id": "alice"}
        slow = {}

        def run_slow():
            slow["response"] = _post(daemon.address, {
                "request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "deadline_s": 60, "use_store": False}, headers=alice)

        worker = threading.Thread(target=run_slow)
        worker.start()
        assert _wait_until(lambda: daemon.admission.inflight >= 1)

        status, text, headers = _post(daemon.address, {
            "request": {"source": KERNEL}, "use_store": False},
            headers=alice)
        assert status == 503
        assert json.loads(text)["error"]["kind"] == "client_limit"
        assert "Retry-After" in headers

        # a different client is not throttled by alice's misbehavior
        status, _, _ = _post(daemon.address, {
            "request": {"source": KERNEL}, "use_store": False},
            headers={"X-Client-Id": "bob"})
        assert status == 200

        worker.join(timeout=60)
        assert slow["response"][0] == 200
        assert daemon.metrics.get("rejected_client_limit_total") == 1


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_expiry_answers_504(self, make_daemon):
        daemon = make_daemon()
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.05:always"))
        start = time.monotonic()
        status, text, _ = _post(daemon.address, {
            "request": {"source": KERNEL},
            "session": {"llm_backend": "faulty"},
            "deadline_s": 0.3, "use_store": False})
        elapsed = time.monotonic() - start
        assert status == 504
        assert json.loads(text)["error"]["kind"] == "deadline"
        assert elapsed < 10.0  # cancelled cooperatively, did not run out
        assert daemon.metrics.get("deadline_total") == 1
        assert daemon.metrics.get("cancelled_total") == 1

        # the slot is released in the handler's finally, which can land
        # just after the client reads the 504 — wait for it to settle
        assert _wait_until(lambda: daemon.admission.inflight == 0)
        status, doc, _ = _get(daemon.address, "/healthz")
        assert status == 200 and doc["status"] == "ok"


# ----------------------------------------------------------------------
# resilience: retries recover, breakers fail fast
# ----------------------------------------------------------------------
class TestResilienceOverHTTP:
    def test_transient_faults_are_retried_to_byte_identical_result(
            self, make_daemon):
        daemon = make_daemon()
        body = {"request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "use_store": False}
        status, clean, _ = _post(daemon.address, body)
        assert status == 200

        install_plan(FaultPlan.parse("llm.generate:raise:times=2"))
        status, faulted, _ = _post(daemon.address, body)
        assert status == 200
        assert faulted == clean  # retries leave no trace in the result
        assert daemon.metrics.get("retries_total") >= 2
        snapshot = daemon.metrics.snapshot()
        assert snapshot["gauges"]["breakers"]["llm:faulty"] == "closed"

    def test_persistent_failure_trips_the_breaker_to_fail_fast(
            self, monkeypatch, make_daemon):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "2")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "3")
        daemon = make_daemon()
        install_plan(FaultPlan.parse("llm.generate:raise:always"))
        body = {"request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "use_store": False}

        status, text, _ = _post(daemon.address, body)
        assert status == 502  # retries exhausted: honest backend error
        assert json.loads(text)["error"]["kind"] == "backend"

        status, text, _ = _post(daemon.address, body)
        assert status == 502  # third failure trips the breaker

        status, text, headers = _post(daemon.address, body)
        assert status == 503  # now failing fast, no backend call at all
        doc = json.loads(text)
        assert doc["error"]["kind"] == "breaker_open"
        assert doc["error"]["site"] == "llm:faulty"
        assert int(headers["Retry-After"]) >= 1

        assert daemon.metrics.get("breaker_opens_total") == 1
        snapshot = daemon.metrics.snapshot()
        assert snapshot["gauges"]["breakers"]["llm:faulty"] == "open"

        status, doc, _ = _get(daemon.address, "/healthz")
        assert status == 200  # the daemon itself is perfectly healthy


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new_work(
            self, make_daemon):
        daemon = make_daemon(drain_grace=30.0)
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.05:always"))
        slow = {}

        def run_slow():
            slow["response"] = _post(daemon.address, {
                "request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "use_store": False})

        worker = threading.Thread(target=run_slow)
        worker.start()
        assert _wait_until(lambda: daemon.admission.inflight >= 1)
        daemon.begin_drain(reason="test")

        status, text, _ = _post(daemon.address, {
            "request": {"source": KERNEL}, "use_store": False})
        assert status == 503
        assert json.loads(text)["error"]["kind"] == "draining"
        status, doc, _ = _get(daemon.address, "/healthz")
        assert status == 503 and doc["status"] == "draining"

        worker.join(timeout=60)
        status, text, _ = slow["response"]
        assert status == 200  # in-flight work finished cleanly
        assert daemon._drained.wait(30)
        assert daemon.metrics.get("drains_total") == 1

    def test_drain_cancels_work_past_the_grace_period(self,
                                                      make_daemon):
        daemon = make_daemon(drain_grace=0.2)
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.2:always"))
        slow = {}

        def run_slow():
            slow["response"] = _post(daemon.address, {
                "request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "use_store": False})

        worker = threading.Thread(target=run_slow)
        worker.start()
        assert _wait_until(lambda: daemon.admission.inflight >= 1)
        daemon.begin_drain(reason="test")
        worker.join(timeout=60)

        status, text, _ = slow["response"]
        assert status == 503
        assert json.loads(text)["error"]["kind"] == "drain"
        assert daemon._drained.wait(30)

    def test_drain_answers_queued_waiters_with_503_not_silence(
            self, make_daemon):
        # The SIGTERM-vs-queued-waiter race: a request sitting in the
        # admission queue when drain begins must get a definite 503
        # ("drain"), not hang forever and not sneak through to a 200.
        daemon = make_daemon(max_inflight=1, queue_depth=2,
                             drain_grace=0.2)
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.3:always"))
        responses = {}

        def run(name):
            responses[name] = _post(daemon.address, {
                "request": {"source": KERNEL},
                "session": {"llm_backend": "faulty"},
                "use_store": False})

        inflight = threading.Thread(target=run, args=("inflight",))
        inflight.start()
        assert _wait_until(lambda: daemon.admission.inflight >= 1)
        queued = threading.Thread(target=run, args=("queued",))
        queued.start()
        assert _wait_until(lambda: daemon.admission.queued >= 1)

        daemon.begin_drain(reason="test")
        inflight.join(timeout=60)
        queued.join(timeout=60)
        assert daemon._drained.wait(30)

        status, text, headers = responses["queued"]
        assert status == 503  # answered, not abandoned
        doc = json.loads(text)
        assert doc["error"]["kind"] == "drain"
        assert "Retry-After" in headers
        # the in-flight one was past the grace too, so also a drain 503
        status, text, _ = responses["inflight"]
        assert status == 503


# ----------------------------------------------------------------------
# streaming
# ----------------------------------------------------------------------
class TestStreaming:
    def test_ndjson_events_then_result(self, make_daemon):
        daemon = make_daemon()
        status, lines = _stream(daemon.address, {
            "request": {"source": KERNEL}, "stream": True,
            "use_store": False})
        assert status == 200
        docs = [json.loads(line) for line in lines]
        kinds = [doc["kind"] for doc in docs]
        assert kinds[0] == "request"
        assert "selected" in kinds
        assert kinds[-1] == "result"
        events = docs[:-1]
        assert [e["seq"] for e in events] == list(range(len(events)))

        final = docs[-1]
        final.pop("kind")
        session = OptimizerSession(dataset_size=40)
        result = session.optimize(_canonical_request(), use_store=False)
        assert final == result.to_json_dict(include_events=False)
        assert daemon.metrics.get("streams_total") == 1

    def test_concurrent_streams_see_only_their_own_events(self,
                                                          make_daemon):
        daemon = make_daemon()
        out = {}

        def run(name):
            out[name] = _stream(daemon.address, {
                "request": {"source": KERNEL}, "stream": True,
                "use_store": False})

        workers = [threading.Thread(target=run, args=(name,))
                   for name in ("a", "b")]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)

        for name in ("a", "b"):
            status, lines = out[name]
            assert status == 200
            docs = [json.loads(line) for line in lines]
            assert docs[-1]["kind"] == "result"
            events = docs[:-1]
            # request-local sequence with no foreign events interleaved
            assert [e["seq"] for e in events] == \
                list(range(len(events)))


# ----------------------------------------------------------------------
# session pool + request materialization (in-process)
# ----------------------------------------------------------------------
class TestSessionPool:
    def test_pool_reuses_and_lru_evicts(self, make_daemon):
        daemon = make_daemon(max_sessions=1)
        first = daemon.session_for({"seed": 0})
        assert daemon.session_for({"seed": 0}) is first
        second = daemon.session_for({"seed": 1})
        assert second is not first
        assert daemon._session_count() == 1  # LRU bound held

    def test_resilience_wraps_the_backend(self, make_daemon):
        daemon = make_daemon()
        assert daemon._effective_spec({})["llm_backend"] == \
            "resilient:simulated"
        plain = make_daemon(resilience=False)
        assert "llm_backend" not in plain._effective_spec({})

    def test_unknown_session_field_is_rejected(self, make_daemon):
        daemon = make_daemon()
        with pytest.raises(BadRequest, match="bogus"):
            daemon.session_for({"bogus": 1})


class TestMaterializeRequest:
    def test_defaults(self):
        request = ServeDaemon.materialize_request({"source": KERNEL})
        echo = request.echo()
        assert echo["target"] == "axpyish"
        assert echo["system"] == "looprag"
        assert echo["perf"] == {"N": 1500}
        assert echo["test"] == {"N": 8}

    @pytest.mark.parametrize("entry,match", [
        ("not a dict", "must be an object"),
        ({}, "source"),
        ({"source": "scop ((("}, "unparseable"),
        ({"source": KERNEL, "system": "not-a-system"},
         "not-a-system"),
    ])
    def test_bad_entries(self, entry, match):
        with pytest.raises(BadRequest, match=match):
            ServeDaemon.materialize_request(entry)


# ----------------------------------------------------------------------
# admission controller (unit)
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_inflight_then_queue_then_reject(self):
        admission = AdmissionController(max_inflight=1, queue_depth=1,
                                        per_client=10)
        admission.acquire("a")
        acquired = threading.Event()

        def queued_acquire():
            admission.acquire("b")
            acquired.set()

        worker = threading.Thread(target=queued_acquire)
        worker.start()
        assert _wait_until(lambda: admission.queued == 1)

        with pytest.raises(Rejected) as excinfo:
            admission.acquire("c")
        assert excinfo.value.reason == "overloaded"
        assert excinfo.value.retry_after >= 1.0

        admission.release("a")
        assert acquired.wait(5.0)
        worker.join()
        admission.release("b")
        assert admission.inflight == 0
        assert admission.queued == 0

    def test_per_client_limit(self):
        admission = AdmissionController(max_inflight=4, queue_depth=4,
                                        per_client=1)
        admission.acquire("a")
        with pytest.raises(Rejected) as excinfo:
            admission.acquire("a")
        assert excinfo.value.reason == "client_limit"
        admission.acquire("b")  # other clients are unaffected
        admission.release("a")
        admission.acquire("a")  # slot freed

    def test_queued_waiter_honors_cancellation(self):
        admission = AdmissionController(max_inflight=1, queue_depth=2,
                                        per_client=10)
        admission.acquire("a")
        token = CancelToken()
        outcome = []

        def queued_acquire():
            try:
                admission.acquire("b", token)
            except Cancelled as exc:
                outcome.append(exc.reason)

        worker = threading.Thread(target=queued_acquire)
        worker.start()
        assert _wait_until(lambda: admission.queued == 1)
        token.cancel("drain")
        worker.join(timeout=5.0)
        assert outcome == ["drain"]
        assert admission.queued == 0
        # the client count was rolled back: b can come straight back
        admission.release("a")
        admission.acquire("b")

    def test_retry_after_scales_with_observed_latency(self):
        # No latency data yet: fall back to 1s + queue depth.
        admission = AdmissionController(max_inflight=2, queue_depth=0,
                                        per_client=10)
        assert admission.retry_after_estimate() == 1.0

        # With a latency hint the estimate is (queued + inflight)
        # * p50 / max_inflight, clamped to [1, 30].
        admission = AdmissionController(max_inflight=2, queue_depth=0,
                                        per_client=10,
                                        latency_hint=lambda: 8.0)
        admission.acquire("a")
        admission.acquire("b")
        assert admission.retry_after_estimate() == 8.0  # 2 * 8 / 2
        with pytest.raises(Rejected) as excinfo:
            admission.acquire("c")
        assert excinfo.value.retry_after == 8.0

        # The clamp keeps pathological hints honest.
        high = AdmissionController(max_inflight=1, queue_depth=0,
                                   per_client=10,
                                   latency_hint=lambda: 1e6)
        high.acquire("a")
        assert high.retry_after_estimate() == 30.0
        # ... and a broken hint degrades to the queue-based fallback.
        broken = AdmissionController(
            max_inflight=1, queue_depth=0, per_client=10,
            latency_hint=lambda: (_ for _ in ()).throw(RuntimeError()))
        assert broken.retry_after_estimate() == 1.0

    def test_wait_idle(self):
        admission = AdmissionController(max_inflight=1, queue_depth=0,
                                        per_client=1)
        assert admission.wait_idle(0.05)
        admission.acquire("a")
        assert not admission.wait_idle(0.05)
        threading.Timer(0.05, admission.release, args=("a",)).start()
        assert admission.wait_idle(5.0)


# ----------------------------------------------------------------------
# config + metrics (unit)
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_INFLIGHT", "2")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "3")
        monkeypatch.setenv("REPRO_SERVE_DEADLINE", "1.5")
        config = ServeConfig.from_env()
        assert config.max_inflight == 2
        assert config.queue_depth == 3
        assert config.default_deadline == 1.5
        assert ServeConfig.from_env(max_inflight=9).max_inflight == 9

    def test_with_overrides_filters_none(self):
        config = ServeConfig()
        same = config.with_overrides(port=None, host=None)
        assert same == config
        changed = config.with_overrides(port=1234, max_inflight=None)
        assert changed.port == 1234
        assert changed.max_inflight == config.max_inflight


class TestMetrics:
    def test_counters_and_percentiles(self):
        metrics = Metrics()
        metrics.inc("x")
        metrics.inc("x", 2)
        assert metrics.get("x") == 3
        for ms in range(1, 101):
            metrics.observe_latency(ms / 1000.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["x"] == 3
        assert snapshot["latency"]["count"] == 100
        assert snapshot["latency"]["p50_ms"] == pytest.approx(51.0)
        assert snapshot["latency"]["p95_ms"] == pytest.approx(95.0)
        assert snapshot["latency"]["max_ms"] == pytest.approx(100.0)

    def test_failing_gauge_never_breaks_snapshot(self):
        metrics = Metrics()
        metrics.gauge("ok", lambda: 7)
        metrics.gauge("broken", lambda: 1 / 0)
        snapshot = metrics.snapshot()
        assert snapshot["gauges"]["ok"] == 7
        assert snapshot["gauges"]["broken"] is None
