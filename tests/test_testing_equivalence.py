"""Equivalence checking tests: inputs, coverage, differential, audits."""

import numpy as np
import pytest

from repro.ir import parse_scop
from repro.runtime import allocate
from repro.testing import (EquivalenceChecker, TestInput, input_pool,
                           materialize_input, VERDICT_IA, VERDICT_PASS,
                           VERDICT_RE)
from repro.transforms import (interchange, parallelize, shift, tile,
                              vectorize)


class TestInputs:
    def test_pool_contains_seeds_and_mutants(self):
        pool = input_pool(max_seeds=2, mutations_per_seed=3, seed=1)
        seeds = [t for t in pool if not t.mutations]
        mutants = [t for t in pool if t.mutations]
        assert len(seeds) == 2 and len(mutants) == 6

    def test_materialize_deterministic(self, gemm):
        ti = TestInput(variant=1, mutations=(("value", 42),))
        a = materialize_input(gemm, {"NI": 5, "NJ": 5, "NK": 5}, ti)
        b = materialize_input(gemm, {"NI": 5, "NJ": 5, "NK": 5}, ti)
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_mutation_changes_data(self, gemm):
        params = {"NI": 5, "NJ": 5, "NK": 5}
        plain = materialize_input(gemm, params, TestInput(variant=0))
        mutated = materialize_input(
            gemm, params, TestInput(variant=0,
                                    mutations=(("operator", 7),)))
        assert any(not np.array_equal(plain[k], mutated[k])
                   for k in plain)

    @pytest.mark.parametrize("kind", ["value", "operator", "statement"])
    def test_all_mutation_kinds_apply(self, gemm, kind):
        params = {"NI": 5, "NJ": 5, "NK": 5}
        ti = TestInput(variant=0, mutations=((kind, 3),))
        storage = materialize_input(gemm, params, ti)
        assert all(np.isfinite(arr).all() for arr in storage.values())


class TestDifferential:
    @pytest.fixture
    def checker(self, gemm):
        return EquivalenceChecker(gemm, {"NI": 7, "NJ": 6, "NK": 5})

    def test_identity_passes(self, gemm, checker):
        assert checker.check(gemm).verdict == VERDICT_PASS

    def test_legal_transform_passes(self, gemm, checker):
        t = interchange(gemm, 3, 5, stmts=["S2"])
        assert checker.check(t).verdict == VERDICT_PASS

    def test_shrunk_bound_caught(self, gemm, checker):
        from repro.ir.domain import Domain, IterSpec
        stmt = gemm.statements[1]
        specs = list(stmt.domain.iters)
        spec = specs[0]
        specs[0] = IterSpec(spec.name, spec.lowers,
                            tuple(u - 1 for u in spec.uppers))
        broken = gemm.with_statement(
            "S2", stmt.with_domain(Domain(tuple(specs))))
        assert checker.check(broken).verdict == VERDICT_IA

    def test_oob_caught_as_re(self, checker, gemm):
        from repro.ir.domain import Domain, IterSpec
        stmt = gemm.statements[1]
        specs = list(stmt.domain.iters)
        spec = specs[0]
        specs[0] = IterSpec(spec.name, spec.lowers,
                            tuple(u + 1 for u in spec.uppers))
        broken = gemm.with_statement(
            "S2", stmt.with_domain(Domain(tuple(specs))))
        assert checker.check(broken).verdict == VERDICT_RE

    def test_verdicts_cached(self, gemm, checker):
        first = checker.check(gemm)
        assert checker.check(gemm) is first


class TestAudits:
    def test_big_tile_illegality_caught_at_small_size(self, syrk):
        """The size-32 tile never crosses a boundary at N=8, yet the
        candidate is wrong at scale — the order audit must catch it."""
        checker = EquivalenceChecker(syrk, {"N": 8, "M": 6})
        bad = tile(syrk, [1, 3], 32)
        report = checker.check(bad)
        assert report.verdict == VERDICT_IA
        assert "reordered" in report.detail

    def test_race_on_parallel_recurrence(self, recur):
        checker = EquivalenceChecker(recur, {"LEN": 16})
        racy = parallelize(recur, 1)
        report = checker.check(racy)
        assert report.verdict == VERDICT_IA
        assert "race" in report.detail

    def test_simd_on_recurrence_caught(self, recur):
        checker = EquivalenceChecker(recur, {"LEN": 16})
        report = checker.check(vectorize(recur, 1))
        assert report.verdict == VERDICT_IA

    def test_reduction_clause_forgiven(self):
        p = parse_scop("""
        scop dot(N) {
          array s[2] output;
          array a[N];
          array b[N];
          for (i = 0; i < N; i++)
            s[0] += a[i] * b[i];
        }
        """)
        checker = EquivalenceChecker(p, {"N": 20})
        assert checker.check(parallelize(p, 1)).verdict == VERDICT_PASS
        assert checker.check(vectorize(p, 1)).verdict == VERDICT_PASS

    def test_legal_parallel_passes(self, gemm):
        checker = EquivalenceChecker(gemm, {"NI": 7, "NJ": 6, "NK": 5})
        assert checker.check(parallelize(gemm, 1)).verdict == VERDICT_PASS


class TestCoverageGuidedSelection:
    def test_input_count_bounded(self, gemm):
        checker = EquivalenceChecker(gemm, {"NI": 6, "NJ": 6, "NK": 6})
        assert 3 <= checker.num_inputs <= 12

    def test_guarded_kernel_reaches_full_coverage(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 2)
              A[i] = A[i] + 1.0;
        }
        """)
        checker = EquivalenceChecker(p, {"N": 12})
        assert checker.coverage == 1.0
