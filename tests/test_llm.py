"""Simulated-LLM tests: prompts, intents, slips, determinism."""

import random

import pytest

from repro.codegen import scop_body_to_c
from repro.ir import check_program, parse_scop
from repro.llm import (DEEPSEEK_V3, GPT_4O, Intent, SimulatedLLM,
                       base_prompt, compile_feedback_prompt, demo_prompt,
                       intents_from_recipe, materialize, semantic_slip,
                       syntax_slip)
from repro.llm import test_rank_feedback_prompt as make_rank_prompt
from repro.llm.prompts import AttemptRecord
from repro.retrieval import Retriever
from repro.runtime import run
from repro.synthesis import build_dataset
from repro.transforms import TransformRecipe, TransformStep


@pytest.fixture(scope="module")
def retriever():
    return Retriever(build_dataset(size=50, seed=21))


def _demo_prompt_for(program, retriever):
    demos = retriever.demonstrations(program, random.Random(0))
    return demo_prompt(program, scop_body_to_c(program), demos)


class TestPrompts:
    def test_base_prompt_contains_rules(self, gemm):
        p = base_prompt(gemm, scop_body_to_c(gemm))
        assert "As a compiler" in p.text
        assert "markdown code block" in p.text

    def test_demo_prompt_contains_examples(self, gemm, retriever):
        p = _demo_prompt_for(gemm, retriever)
        assert "// original code" in p.text
        assert "// optimized code" in p.text
        assert "analyze" in p.text and "learn" in p.text

    def test_compile_feedback_mentions_error(self, gemm):
        prev = base_prompt(gemm, scop_body_to_c(gemm))
        p = compile_feedback_prompt(prev, "bad code", None,
                                    "error: 'tmp' undeclared")
        assert "compilation error" in p.text
        assert "'tmp' undeclared" in p.text

    def test_rank_prompt_orders_by_speed(self, gemm):
        prev = base_prompt(gemm, scop_body_to_c(gemm))
        attempts = (
            AttemptRecord(0, "slow", None, True, 2.0),
            AttemptRecord(1, "fast", None, True, 1.0),
            AttemptRecord(2, "broken", None, False, None),
        )
        p = make_rank_prompt(prev, attempts)
        assert "1 > 0" in p.text
        assert "Failed: 2" in p.text


class TestIntents:
    def test_intents_from_recipe_dedupes(self):
        recipe = TransformRecipe.of(
            TransformStep.make("tiling", columns=[1], sizes=[16]),
            TransformStep.make("tiling", columns=[2], sizes=[16]),
            TransformStep.make("parallel", col=1))
        intents = intents_from_recipe(recipe)
        assert [i.kind for i in intents] == ["tiling", "parallel"]
        assert intents[0].size == 16

    def test_materialize_tiling_uses_band(self, gemm):
        step = materialize(Intent(kind="tiling", size=8), gemm,
                           random.Random(0))
        assert step.kind == "tiling"
        assert step.arg_dict()["sizes"] == [8, 8]

    def test_materialize_interchange_fixes_stride(self, syrk):
        step = materialize(Intent(kind="interchange"), syrk,
                           random.Random(0))
        args = step.arg_dict()
        # the stride heuristic proposes the k/j swap in S2 (§2.2)
        assert args.get("stmts") == ["S2"]

    def test_materialize_on_impossible_program(self, stream):
        assert materialize(Intent(kind="fusion"), stream,
                           random.Random(0)) is None
        assert materialize(Intent(kind="shifting"), stream,
                           random.Random(0)) is None


class TestSlips:
    def test_semantic_slip_changes_output(self, gemm):
        params = {"NI": 7, "NJ": 6, "NK": 5}
        reference = run(gemm, params).checksum
        changed = 0
        for seed in range(8):
            slipped, what = semantic_slip(gemm, random.Random(seed))
            if what == "no-op slip":
                continue
            try:
                if run(slipped, params).checksum != reference:
                    changed += 1
            except Exception:
                changed += 1  # RE counts as caught
        assert changed >= 5

    def test_syntax_slip_fails_compilation(self, gemm):
        for seed in range(6):
            broken, _ = syntax_slip(gemm, random.Random(seed))
            assert check_program(broken)


class TestSimulatedLLM:
    def test_deterministic_generation(self, gemm, retriever):
        prompt = _demo_prompt_for(gemm, retriever)
        a = SimulatedLLM(DEEPSEEK_V3, seed=4).generate(prompt, 0, "r1")
        b = SimulatedLLM(DEEPSEEK_V3, seed=4).generate(prompt, 0, "r1")
        assert a.program.fingerprint() == b.program.fingerprint()

    def test_personas_differ(self, gemm, retriever):
        prompt = _demo_prompt_for(gemm, retriever)
        outs_a = [SimulatedLLM(DEEPSEEK_V3, seed=4).generate(prompt, k, "r1")
                  .program.fingerprint() for k in range(5)]
        outs_b = [SimulatedLLM(GPT_4O, seed=4).generate(prompt, k, "r1")
                  .program.fingerprint() for k in range(5)]
        assert outs_a != outs_b

    def test_base_mode_rarely_tiles(self, gemm):
        prompt = base_prompt(gemm, scop_body_to_c(gemm))
        llm = SimulatedLLM(DEEPSEEK_V3, seed=4)
        kinds = set()
        for k in range(10):
            kinds.update(llm.generate(prompt, k, "r1").applied.kinds())
        assert "tiling" not in kinds

    def test_demo_mode_learns_tiling(self, gemm, retriever):
        prompt = _demo_prompt_for(gemm, retriever)
        llm = SimulatedLLM(DEEPSEEK_V3, seed=4)
        kinds = set()
        for k in range(10):
            kinds.update(llm.generate(prompt, k, "r1").applied.kinds())
        assert "tiling" in kinds

    def test_response_renders_markdown(self, gemm, retriever):
        prompt = _demo_prompt_for(gemm, retriever)
        out = SimulatedLLM(DEEPSEEK_V3, seed=4).generate(prompt, 0, "r1")
        assert out.text.startswith("```c")

    def test_misread_is_correlated(self):
        # find a target/persona/seed combination that misreads, then all
        # candidates must carry a slip
        complex_src = """
        scop dense(N) {
          array A[N][N] output;
          array B[N][N];
          array C[N][N] output;
          for (i = 1; i < N; i++) {
            for (j = 1; j < N; j++)
              A[i][j] = A[i-1][j] + B[i][j];
            for (j = 1; j < N; j++)
              C[i][j] = A[i][j] * B[i][j-1];
          }
        }
        """
        program = parse_scop(complex_src)
        prompt = base_prompt(program, scop_body_to_c(program))
        for seed in range(30):
            llm = SimulatedLLM(GPT_4O, seed=seed)
            state = llm._misread_state(prompt)
            if state is not None:
                outs = [llm.generate(prompt, k, "r1") for k in range(5)]
                assert all(o.slipped for o in outs)
                return
        pytest.fail("no misread observed in 30 seeds")
