"""Persistent result store + parallel runner tests.

Covers the PR-1 harness rebuild on its PR-6 storage rebase: warm-cache
hits return identical ``BenchResult`` lists through the sharded
artifact store, ``REPRO_NO_CACHE`` bypasses the store, corrupt and
superseded lines are counted separately, pre-sharding ``results.jsonl``
files migrate transparently with byte-identical warm hits, torn shard
tails are skipped and repaired by compaction, concurrent-process
appends never tear, and parallel runs are identical to serial ones on a
``REPRO_SUITE_LIMIT=3`` sweep.
"""

import json
import multiprocessing
import os

import pytest

from repro.evaluation import harness
from repro.evaluation import store as store_module
from repro.evaluation.harness import (base_llm_plan, compiler_plan,
                                      looprag_plan, run_compiler,
                                      run_plans)
from repro.evaluation.parallel import map_items, resolve_pool
from repro.evaluation.store import (RESULTS_STREAM, ResultStore,
                                    active_store, encode_key)
from repro.llm.personas import DEEPSEEK_V3, GPT_4O
from repro.registry import UnknownComponentError
from repro.storage import STORAGE_SCHEMA


@pytest.fixture
def fresh_harness(monkeypatch, tmp_path):
    """Empty store in a tmp dir + cleared in-memory caches."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    # inherit an ambient REPRO_STORE_BACKEND (the CI store-stress matrix
    # sets it); default to the sharded on-disk backend
    monkeypatch.setenv("REPRO_STORE_BACKEND",
                       os.environ.get("REPRO_STORE_BACKEND") or "local")
    monkeypatch.setenv("REPRO_SUITE_LIMIT", "3")
    harness._RUN_CACHE.clear()
    harness._RUNNER_CACHE.clear()
    store_module._STORES.clear()
    yield tmp_path
    harness._RUN_CACHE.clear()
    harness._RUNNER_CACHE.clear()
    store_module._STORES.clear()


def _forget_memory():
    """Simulate a new process: drop every in-memory layer."""
    harness._RUN_CACHE.clear()
    harness._RUNNER_CACHE.clear()
    store_module._STORES.clear()


def require_on_disk(store: ResultStore) -> None:
    """Skip scenarios that hand-edit shard files or cross processes
    when the configured backend keeps entries in memory."""
    if not store.artifacts().on_disk:
        pytest.skip("scenario needs the on-disk sharded backend")


def shard_files(store: ResultStore):
    """Non-empty shard files behind the results stream."""
    require_on_disk(store)
    return [path for path in
            store.artifacts().shard_paths(RESULTS_STREAM)
            if path.stat().st_size]


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k", 1), [{"a": 1}])
        assert store.get(("k", 1)) == [{"a": 1}]
        assert store.get(("k", 2)) is None
        assert store.stats()["writes"] == 1

    def test_survives_reload(self, tmp_path):
        ResultStore(tmp_path).put(("k",), [{"a": 1}])
        assert ResultStore(tmp_path).get(("k",)) == [{"a": 1}]

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k",), [{"a": 1}])
        store.put(("k",), [{"a": 2}])
        reloaded = ResultStore(tmp_path)
        assert reloaded.get(("k",)) == [{"a": 2}]
        assert reloaded.stats()["superseded"] == 1

    def test_corrupt_lines_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("good",), [{"a": 1}])
        [shard] = shard_files(store)
        with open(shard, "a") as handle:
            handle.write("{not json\n")
            handle.write('{"schema": 999, "key": "x", "payload": []}\n')
            handle.write('{"missing": "fields"}\n')
        reloaded = ResultStore(tmp_path)
        assert reloaded.get(("good",)) == [{"a": 1}]
        assert reloaded.stats()["corrupt"] == 3

    def test_superseded_and_corrupt_counted_separately(self, tmp_path):
        """Duplicates no longer vanish into the corrupt bucket."""
        store = ResultStore(tmp_path)
        store.put(("dup",), [{"v": 1}])
        store.put(("dup",), [{"v": 2}])
        [shard] = shard_files(store)
        with open(shard, "a") as handle:
            handle.write("garbage\n")
        stats = ResultStore(tmp_path).stats()
        assert stats["superseded"] == 1
        assert stats["corrupt"] == 1
        assert stats["entries"] == 1

    def test_record_schema_stamped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k",), [])
        [shard] = shard_files(store)
        record = json.loads(shard.read_text())
        assert record["schema"] == STORAGE_SCHEMA
        assert record["key"] == encode_key(("k",))
        assert record["payload"] == []

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k",), [{"a": 1}])
        store.clear()
        assert not shard_files(store)
        assert store.get(("k",)) is None

    def test_compact_reclaims_duplicates(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(("k",), [{"round": i}])
        report = store.compact()
        assert report.dropped_superseded == 4
        fresh = ResultStore(tmp_path)
        assert fresh.get(("k",)) == [{"round": 4}]
        assert fresh.stats()["superseded"] == 0

    def test_no_cache_disables_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert active_store() is None

    def test_memory_backend(self, tmp_path):
        store = ResultStore(tmp_path, backend="memory")
        store.put(("k",), [{"a": 1}])
        assert store.get(("k",)) == [{"a": 1}]
        assert not (tmp_path / "store").exists()  # nothing on disk
        # per-root world: a second instance over the same root sees it
        assert ResultStore(tmp_path, backend="memory").get(
            ("k",)) == [{"a": 1}]

    def test_unknown_backend_rejected(self, tmp_path):
        store = ResultStore(tmp_path, backend="s3-someday")
        with pytest.raises(UnknownComponentError, match="local"):
            store.get(("k",))


class TestMigration:
    """Pre-sharding ``results.jsonl`` stores absorb transparently."""

    LEGACY = [
        {"schema": 1, "key": encode_key(("a",)), "results": [{"v": 1}]},
        {"schema": 1, "key": encode_key(("b",)),
         "results": [{"v": 2, "f": 1.5, "n": None}]},
        {"schema": 1, "key": encode_key(("a",)), "results": [{"v": 3}]},
    ]

    def _write_legacy(self, root):
        root.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(rec, separators=(",", ":"))
                 for rec in self.LEGACY]
        lines.insert(1, "{torn garbag")  # old stores tolerated these
        (root / "results.jsonl").write_text("\n".join(lines) + "\n")

    def test_absorbs_legacy_file_on_first_open(self, tmp_path):
        self._write_legacy(tmp_path)
        store = ResultStore(tmp_path)
        require_on_disk(store)  # the rename marks on-disk migrations
        assert store.get(("a",)) == [{"v": 3}]  # last write won
        assert store.get(("b",)) == [{"v": 2, "f": 1.5, "n": None}]
        assert store.migrated == 3
        assert not (tmp_path / "results.jsonl").exists()
        assert (tmp_path / "results.jsonl.migrated").exists()

    def test_payloads_byte_identical_through_migration(self, tmp_path):
        self._write_legacy(tmp_path)
        store = ResultStore(tmp_path)
        for record in self.LEGACY:
            expected = json.dumps(record["results"],
                                  separators=(",", ":"))
            if record["key"] == encode_key(("a",)) and \
                    record["results"] == [{"v": 1}]:
                continue  # superseded by the later write
            got = store.get(json.loads(record["key"]))
            assert json.dumps(got, separators=(",", ":")) == expected

    def test_migration_runs_once(self, tmp_path):
        self._write_legacy(tmp_path)
        ResultStore(tmp_path).get(("a",))
        second = ResultStore(tmp_path)
        assert second.get(("a",)) == [{"v": 3}]
        assert second.migrated == 0  # nothing left to absorb

    def test_memory_backend_absorbs_but_keeps_file(self, tmp_path):
        self._write_legacy(tmp_path)
        store = ResultStore(tmp_path, backend="memory")
        assert store.get(("a",)) == [{"v": 3}]
        # the legacy file IS the durable copy for a volatile backend
        assert (tmp_path / "results.jsonl").exists()

    def test_warm_hit_through_migration_is_identical(self,
                                                     fresh_harness,
                                                     monkeypatch,
                                                     tmp_path_factory):
        """A store written by the old layout serves byte-identical warm
        results after migrating to the sharded layout."""
        require_on_disk(active_store())
        cold = run_compiler("polybench", "graphite")
        plan_key = compiler_plan("polybench", "graphite").key()
        payload = active_store().get(plan_key)

        legacy_dir = tmp_path_factory.mktemp("legacy_cache")
        record = {"schema": 1, "key": encode_key(plan_key),
                  "results": payload}
        (legacy_dir / "results.jsonl").write_text(
            json.dumps(record, separators=(",", ":")) + "\n")

        monkeypatch.setenv("REPRO_CACHE_DIR", str(legacy_dir))
        _forget_memory()
        warm = run_compiler("polybench", "graphite")
        assert warm == cold
        assert active_store().stats()["hits"] == 1
        assert (legacy_dir / "results.jsonl.migrated").exists()


class TestCrashRecovery:
    """A shard torn mid-line loses one record, never the store."""

    def test_torn_tail_skipped_compacted_and_warm_identical(
            self, fresh_harness):
        cold = run_compiler("polybench", "graphite")
        store = active_store()
        replicated = hasattr(store.artifacts(), "children")
        [shard] = shard_files(store)  # the primary's, when replicated
        data = shard.read_bytes()
        shard.write_bytes(data[:-9])  # crash mid-record

        _forget_memory()
        recomputed = run_compiler("polybench", "graphite")
        assert recomputed == cold  # the torn entry is never served
        stats = active_store().stats()
        assert stats["corrupt"] == 1
        if replicated:
            # a healthy replica serves the value and read-repairs the
            # torn primary — recovery without recomputation
            assert stats["hits"] == 1
        else:
            assert stats["hits"] == 0  # recomputed, not served

        report = active_store().compact()
        assert report.dropped_corrupt == 1

        _forget_memory()
        warm = run_compiler("polybench", "graphite")
        assert warm == cold
        stats = active_store().stats()
        assert stats["hits"] == 1
        assert stats["corrupt"] == 0  # the shard was repaired


def _stress_writer(root, worker, rounds):
    store = ResultStore(root)
    for i in range(rounds):
        store.put(("contested",), [{"worker": worker, "i": i}])
        store.put(("own", worker, i), [{"ok": True}])


class TestAtomicAppends:
    def test_multiprocess_puts_never_tear(self, tmp_path):
        """Satellite: the ``put`` lost-update race.  Concurrent
        processes appending the same key must produce whole lines only
        — one writer wins, none interleave fragments."""
        require_on_disk(ResultStore(tmp_path))
        workers = [multiprocessing.get_context().Process(
            target=_stress_writer, args=(str(tmp_path), w, 15))
            for w in range(4)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join()
        assert all(proc.exitcode == 0 for proc in workers)

        store = ResultStore(tmp_path)
        for shard in shard_files(store):
            data = shard.read_bytes()
            assert data.endswith(b"\n")
            for raw in data.splitlines():
                assert json.loads(raw)["schema"] == STORAGE_SCHEMA
        stats = store.stats()
        assert stats["corrupt"] == 0
        assert stats["entries"] == 1 + 4 * 15
        [final] = store.get(("contested",))
        assert final["worker"] in range(4) and final["i"] in range(15)


class TestHarnessStore:
    def test_warm_hit_identical(self, fresh_harness):
        cold = run_compiler("polybench", "graphite")
        _forget_memory()
        warm = run_compiler("polybench", "graphite")
        assert warm == cold
        assert active_store().stats()["hits"] == 1

    def test_no_cache_bypasses_store(self, fresh_harness, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_compiler("polybench", "graphite")
        assert not (fresh_harness / "results.jsonl").exists()
        assert not (fresh_harness / "store").exists()

    def test_corrupt_store_recomputed(self, fresh_harness):
        cold = run_compiler("polybench", "graphite")
        [shard] = shard_files(active_store())
        shard.write_text(shard.read_text().replace('"payload":[{',
                                                   '"payload":[{"bad":1,'))
        _forget_memory()
        assert run_compiler("polybench", "graphite") == cold

    def test_code_change_invalidates_key(self, fresh_harness,
                                         monkeypatch):
        key_before = compiler_plan("polybench", "graphite").key()
        monkeypatch.setattr(store_module, "_CODE_SIGNATURE", "deadbeef")
        assert compiler_plan("polybench", "graphite").key() != key_before

    def test_suite_limit_part_of_key(self, fresh_harness, monkeypatch):
        key_3 = compiler_plan("polybench", "graphite").key()
        monkeypatch.setenv("REPRO_SUITE_LIMIT", "2")
        assert compiler_plan("polybench", "graphite").key() != key_3


class TestParallelRunner:
    PLANS = staticmethod(lambda: [
        looprag_plan("polybench", DEEPSEEK_V3, dataset_size=30),
        base_llm_plan("polybench", GPT_4O),
        compiler_plan("polybench", "pluto"),
        compiler_plan("tsvc", "icx"),
    ])

    def test_thread_pool_matches_serial(self, fresh_harness,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        serial = run_plans(self.PLANS(), jobs=1)
        _forget_memory()
        threaded = run_plans(self.PLANS(), jobs=4, pool="thread")
        assert threaded == serial

    def test_process_pool_matches_serial(self, fresh_harness,
                                         monkeypatch):
        if "process" != resolve_pool("auto"):
            pytest.skip("no fork start method on this platform")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        serial = run_plans([compiler_plan("polybench", "pluto"),
                            compiler_plan("polybench", "icx")], jobs=1)
        _forget_memory()
        forked = run_plans([compiler_plan("polybench", "pluto"),
                            compiler_plan("polybench", "icx")],
                           jobs=2, pool="process")
        assert forked == serial

    def test_parallel_populates_store(self, fresh_harness):
        run_plans(self.PLANS()[2:], jobs=2, pool="thread")
        _forget_memory()
        warm = run_plans(self.PLANS()[2:], jobs=1)
        assert active_store().stats()["hits"] == 2
        assert [r.suite for rs in warm for r in rs] == \
            ["polybench"] * 3 + ["tsvc"] * 3

    def test_failure_keeps_completed_plans(self, fresh_harness,
                                           monkeypatch):
        real = harness._execute_item

        def flaky(item):
            if item[0].optimizer == "icx":
                raise RuntimeError("boom")
            return real(item)

        monkeypatch.setattr(harness, "_execute_item", flaky)
        good = compiler_plan("polybench", "graphite")
        bad = compiler_plan("polybench", "icx")
        with pytest.raises(RuntimeError):
            run_plans([good, bad], jobs=2, pool="thread")
        assert active_store().contains(good.key())
        assert not active_store().contains(bad.key())

    def test_repeated_plans_deduplicated(self, fresh_harness):
        plan = compiler_plan("polybench", "graphite")
        a, b = run_plans([plan, plan], jobs=1)
        assert a is b

    def test_map_items_preserves_order(self):
        items = list(range(20))
        assert map_items(lambda x: x * x, items, jobs=4,
                         pool="thread") == [x * x for x in items]

    def test_map_items_serial_fallback(self):
        assert map_items(lambda x: -x, [1, 2, 3], jobs=1) == [-1, -2, -3]

    def test_resolve_pool_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_pool("ponies")


class TestBenchReport:
    def test_report_is_deterministic_json(self, fresh_harness):
        from repro.evaluation.reporting import bench_report, render_json

        plan = compiler_plan("polybench", "graphite")
        first = render_json(bench_report(
            [(plan.label(), plan.suite, run_plans([plan])[0])]))
        _forget_memory()
        second = render_json(bench_report(
            [(plan.label(), plan.suite, run_plans([plan])[0])]))
        assert first == second
        assert json.loads(first)["runs"][0]["system"] == "graphite"
