"""Persistent result store + parallel runner tests.

Covers the PR-1 harness rebuild: warm-cache hits return identical
``BenchResult`` lists, ``REPRO_NO_CACHE`` bypasses the store, corrupt
and stale entries are ignored, and parallel runs are identical to
serial ones on a ``REPRO_SUITE_LIMIT=3`` sweep.
"""

import json

import pytest

from repro.evaluation import harness
from repro.evaluation import store as store_module
from repro.evaluation.harness import (base_llm_plan, compiler_plan,
                                      looprag_plan, run_compiler,
                                      run_plans)
from repro.evaluation.parallel import map_items, resolve_pool
from repro.evaluation.store import (SCHEMA_VERSION, ResultStore,
                                    active_store, encode_key)
from repro.llm.personas import DEEPSEEK_V3, GPT_4O


@pytest.fixture
def fresh_harness(monkeypatch, tmp_path):
    """Empty store in a tmp dir + cleared in-memory caches."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_SUITE_LIMIT", "3")
    harness._RUN_CACHE.clear()
    harness._RUNNER_CACHE.clear()
    store_module._STORES.clear()
    yield tmp_path
    harness._RUN_CACHE.clear()
    harness._RUNNER_CACHE.clear()
    store_module._STORES.clear()


def _forget_memory():
    """Simulate a new process: drop every in-memory layer."""
    harness._RUN_CACHE.clear()
    harness._RUNNER_CACHE.clear()
    store_module._STORES.clear()


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k", 1), [{"a": 1}])
        assert store.get(("k", 1)) == [{"a": 1}]
        assert store.get(("k", 2)) is None
        assert store.stats()["writes"] == 1

    def test_survives_reload(self, tmp_path):
        ResultStore(tmp_path).put(("k",), [{"a": 1}])
        assert ResultStore(tmp_path).get(("k",)) == [{"a": 1}]

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k",), [{"a": 1}])
        store.put(("k",), [{"a": 2}])
        assert ResultStore(tmp_path).get(("k",)) == [{"a": 2}]

    def test_corrupt_lines_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("good",), [{"a": 1}])
        with open(store.path, "a") as handle:
            handle.write("{not json\n")
            handle.write('{"schema": 999, "key": "x", "results": []}\n')
            handle.write('{"missing": "fields"}\n')
        reloaded = ResultStore(tmp_path)
        assert reloaded.get(("good",)) == [{"a": 1}]
        assert reloaded.stats()["corrupt"] == 3

    def test_schema_version_stamped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k",), [])
        record = json.loads(store.path.read_text())
        assert record["schema"] == SCHEMA_VERSION
        assert record["key"] == encode_key(("k",))

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(("k",), [{"a": 1}])
        store.clear()
        assert not store.path.exists()
        assert store.get(("k",)) is None

    def test_no_cache_disables_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert active_store() is None


class TestHarnessStore:
    def test_warm_hit_identical(self, fresh_harness):
        cold = run_compiler("polybench", "graphite")
        _forget_memory()
        warm = run_compiler("polybench", "graphite")
        assert warm == cold
        assert active_store().stats()["hits"] == 1

    def test_no_cache_bypasses_store(self, fresh_harness, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_compiler("polybench", "graphite")
        assert not (fresh_harness / "results.jsonl").exists()

    def test_corrupt_store_recomputed(self, fresh_harness):
        cold = run_compiler("polybench", "graphite")
        path = fresh_harness / "results.jsonl"
        path.write_text(path.read_text().replace('"results":[{',
                                                 '"results":[{"bad":1,'))
        _forget_memory()
        assert run_compiler("polybench", "graphite") == cold

    def test_code_change_invalidates_key(self, fresh_harness,
                                         monkeypatch):
        key_before = compiler_plan("polybench", "graphite").key()
        monkeypatch.setattr(store_module, "_CODE_SIGNATURE", "deadbeef")
        assert compiler_plan("polybench", "graphite").key() != key_before

    def test_suite_limit_part_of_key(self, fresh_harness, monkeypatch):
        key_3 = compiler_plan("polybench", "graphite").key()
        monkeypatch.setenv("REPRO_SUITE_LIMIT", "2")
        assert compiler_plan("polybench", "graphite").key() != key_3


class TestParallelRunner:
    PLANS = staticmethod(lambda: [
        looprag_plan("polybench", DEEPSEEK_V3, dataset_size=30),
        base_llm_plan("polybench", GPT_4O),
        compiler_plan("polybench", "pluto"),
        compiler_plan("tsvc", "icx"),
    ])

    def test_thread_pool_matches_serial(self, fresh_harness,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        serial = run_plans(self.PLANS(), jobs=1)
        _forget_memory()
        threaded = run_plans(self.PLANS(), jobs=4, pool="thread")
        assert threaded == serial

    def test_process_pool_matches_serial(self, fresh_harness,
                                         monkeypatch):
        if "process" != resolve_pool("auto"):
            pytest.skip("no fork start method on this platform")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        serial = run_plans([compiler_plan("polybench", "pluto"),
                            compiler_plan("polybench", "icx")], jobs=1)
        _forget_memory()
        forked = run_plans([compiler_plan("polybench", "pluto"),
                            compiler_plan("polybench", "icx")],
                           jobs=2, pool="process")
        assert forked == serial

    def test_parallel_populates_store(self, fresh_harness):
        run_plans(self.PLANS()[2:], jobs=2, pool="thread")
        _forget_memory()
        warm = run_plans(self.PLANS()[2:], jobs=1)
        assert active_store().stats()["hits"] == 2
        assert [r.suite for rs in warm for r in rs] == \
            ["polybench"] * 3 + ["tsvc"] * 3

    def test_failure_keeps_completed_plans(self, fresh_harness,
                                           monkeypatch):
        real = harness._execute_item

        def flaky(item):
            if item[0].optimizer == "icx":
                raise RuntimeError("boom")
            return real(item)

        monkeypatch.setattr(harness, "_execute_item", flaky)
        good = compiler_plan("polybench", "graphite")
        bad = compiler_plan("polybench", "icx")
        with pytest.raises(RuntimeError):
            run_plans([good, bad], jobs=2, pool="thread")
        assert active_store().contains(good.key())
        assert not active_store().contains(bad.key())

    def test_repeated_plans_deduplicated(self, fresh_harness):
        plan = compiler_plan("polybench", "graphite")
        a, b = run_plans([plan, plan], jobs=1)
        assert a is b

    def test_map_items_preserves_order(self):
        items = list(range(20))
        assert map_items(lambda x: x * x, items, jobs=4,
                         pool="thread") == [x * x for x in items]

    def test_map_items_serial_fallback(self):
        assert map_items(lambda x: -x, [1, 2, 3], jobs=1) == [-1, -2, -3]

    def test_resolve_pool_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_pool("ponies")


class TestBenchReport:
    def test_report_is_deterministic_json(self, fresh_harness):
        from repro.evaluation.reporting import bench_report, render_json

        plan = compiler_plan("polybench", "graphite")
        first = render_json(bench_report(
            [(plan.label(), plan.suite, run_plans([plan])[0])]))
        _forget_memory()
        second = render_json(bench_report(
            [(plan.label(), plan.suite, run_plans([plan])[0])]))
        assert first == second
        assert json.loads(first)["runs"][0]["system"] == "graphite"
