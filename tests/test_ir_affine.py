"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import Affine, aff, var

names = st.sampled_from(["i", "j", "k", "N", "M"])
affines = st.builds(
    Affine.from_terms,
    st.dictionaries(names, st.integers(-5, 5), max_size=4),
    st.integers(-20, 20),
)
envs = st.fixed_dictionaries({n: st.integers(-10, 10) for n in
                              ["i", "j", "k", "N", "M"]})


class TestConstruction:
    def test_const(self):
        assert aff(7).evaluate({}) == 7
        assert aff(7).is_constant

    def test_var(self):
        assert var("i").evaluate({"i": 3}) == 3
        assert var("i", 4).coeff("i") == 4

    def test_zero_coeff_dropped(self):
        e = Affine.from_terms({"i": 0, "j": 2})
        assert e.variables() == ("j",)

    def test_coerce_int(self):
        assert Affine.coerce(5) == aff(5)

    def test_coerce_passthrough(self):
        e = var("i")
        assert Affine.coerce(e) is e


class TestArithmetic:
    def test_add(self):
        e = var("i") + var("j") + 3
        assert e.evaluate({"i": 1, "j": 2}) == 6

    def test_sub(self):
        e = var("i") - 1
        assert e.evaluate({"i": 5}) == 4

    def test_rsub(self):
        e = 10 - var("i")
        assert e.evaluate({"i": 3}) == 7

    def test_neg(self):
        assert (-var("i")).evaluate({"i": 4}) == -4

    def test_mul_scalar(self):
        assert (var("i") * 3).evaluate({"i": 2}) == 6

    def test_mul_zero_collapses(self):
        assert (var("i") * 0).is_constant

    def test_mul_non_int_rejected(self):
        with pytest.raises(TypeError):
            var("i") * 1.5

    def test_terms_cancel(self):
        e = var("i") - var("i")
        assert e.is_constant and e.const == 0


class TestSubstitution:
    def test_substitute_var(self):
        e = var("i") + 2
        s = e.substitute({"i": var("j") + 1})
        assert s.evaluate({"j": 4}) == 7

    def test_substitute_scales(self):
        e = var("i") * 3
        s = e.substitute({"i": var("j") + 1})
        assert s.evaluate({"j": 2}) == 9

    def test_rename(self):
        e = var("i") + var("N")
        r = e.rename({"i": "t"})
        assert r.coeff("t") == 1 and r.coeff("N") == 1

    def test_missing_binding_raises(self):
        with pytest.raises(KeyError):
            var("i").evaluate({})


class TestRendering:
    @pytest.mark.parametrize("expr,text", [
        (aff(0), "0"),
        (var("i"), "i"),
        (var("i") * -1, "-i"),
        (var("i") + 1, "i+1"),
        (var("i") - var("j"), "i-j"),
        (var("i") * 2 - 3, "2*i-3"),
    ])
    def test_str(self, expr, text):
        assert str(expr) == text


class TestProperties:
    @given(affines, affines, envs)
    def test_add_commutes(self, a, b, env):
        assert (a + b).evaluate(env) == (b + a).evaluate(env)

    @given(affines, affines, affines, envs)
    def test_add_associates(self, a, b, c, env):
        assert ((a + b) + c).evaluate(env) == (a + (b + c)).evaluate(env)

    @given(affines, envs)
    def test_double_negation(self, a, env):
        assert (-(-a)).evaluate(env) == a.evaluate(env)

    @given(affines, st.integers(-6, 6), envs)
    def test_scaling_distributes(self, a, k, env):
        assert (a * k).evaluate(env) == k * a.evaluate(env)

    @given(affines)
    def test_structural_equality_is_hash_equality(self, a):
        b = Affine(a.terms, a.const)
        assert a == b and hash(a) == hash(b)

    @given(affines, envs)
    def test_substitute_identity(self, a, env):
        mapping = {n: Affine.var(n) for n in a.variables()}
        assert a.substitute(mapping) == a
