"""Parser (Clan substitute) tests."""

import pytest

from repro.ir import (Ref, ScopSyntaxError, parse_scop, validate_program)


class TestBasicParsing:
    def test_gemm_statements(self, gemm):
        assert [s.name for s in gemm.statements] == ["S1", "S2"]

    def test_gemm_params(self, gemm):
        assert gemm.params == ("NI", "NJ", "NK")

    def test_gemm_scalars(self, gemm):
        assert dict(gemm.scalars) == {"alpha": 1.5, "beta": 1.2}

    def test_gemm_arrays(self, gemm):
        assert gemm.array_names() == ("C", "A", "B")
        assert gemm.array("C").rank == 2

    def test_output_marker(self, gemm):
        assert gemm.outputs == ("C",)

    def test_schedules_are_2d_plus_1(self, gemm):
        s1, s2 = gemm.statements
        assert str(s1.schedule) == "[0, i, 0, j, 0]"
        assert str(s2.schedule) == "[0, i, 1, k, 0, j, 0]"

    def test_compound_assign_parsed(self, gemm):
        assert gemm.statements[0].body.op == "*="
        assert gemm.statements[1].body.op == "+="

    def test_triangular_bound(self, syrk):
        j_spec = syrk.statements[0].domain.iters[1]
        assert str(j_spec.uppers[0]) == "i"

    def test_strict_less_rewritten(self, gemm):
        i_spec = gemm.statements[0].domain.iters[0]
        assert str(i_spec.uppers[0]) == "NI-1"

    def test_validates(self, gemm, syrk, jacobi2d, stream, recur):
        for program in (gemm, syrk, jacobi2d, stream, recur):
            validate_program(program)


class TestGuardsAndBounds:
    def test_if_becomes_guard(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 2)
              A[i] = A[i] + 1.0;
        }
        """)
        stmt = p.statements[0]
        assert len(stmt.guards) == 1
        assert stmt.guards[0].evaluate({"i": 2}) >= 0
        assert stmt.guards[0].evaluate({"i": 1}) < 0

    def test_conjunction_guards(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 1 && i < N - 1)
              A[i] = 1.0;
        }
        """)
        assert len(p.statements[0].guards) == 2

    def test_max_lower_bound(self):
        p = parse_scop("""
        scop g(N) {
          array A[N][N] output;
          for (i = 0; i < N; i++)
            for (j = max(0, i - 2); j <= min(N - 1, i + 2); j++)
              A[i][j] = 1.0;
        }
        """)
        spec = p.statements[0].domain.iters[1]
        assert len(spec.lowers) == 2 and len(spec.uppers) == 2


class TestRejections:
    def test_unknown_identifier(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) A[i] = q; }")

    def test_nonaffine_subscript(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) A[i*i] = 1.0; }")

    def test_shadowed_iterator(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) "
                       "for (i = 0; i < N; i++) A[i] = 1.0; }")

    def test_wrong_loop_condition_var(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 0; j < N; i++) A[i] = 1.0; }")

    def test_scalar_write_rejected(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) x = 1.0; }")

    def test_empty_scop_rejected(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; }")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) A[i] = 1.0; } garbage")

    def test_downward_loop_rejected(self):
        with pytest.raises(ScopSyntaxError):
            parse_scop("scop b(N) { array A[N] output; "
                       "for (i = N; i > 0; i++) A[i] = 1.0; }")


class TestExpressionParsing:
    def test_precedence(self):
        p = parse_scop("""
        scop e(N) {
          array A[N] output;
          array B[N];
          for (i = 0; i < N; i++)
            A[i] = B[i] + 2.0 * B[i] * 3.0;
        }
        """)
        # B[i] + ((2*B[i])*3) under left-assoc precedence
        rhs = p.statements[0].body.rhs
        assert rhs.op == "+"

    def test_function_call(self):
        p = parse_scop("""
        scop e(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            A[i] = sqrt(A[i]);
        }
        """)
        assert "sqrt" in str(p.statements[0].body)

    def test_negation(self):
        p = parse_scop("""
        scop e(N) {
          array A[N][N] output;
          array C[N];
          for (i = 0; i < N; i++)
            for (k = 0; k < N; k++)
              A[i][k] = -A[k][i] + C[k] - 2.0;
        }
        """)
        reads = [str(r) for r in p.statements[0].body.rhs.reads()]
        assert "A[k][i]" in reads


class TestValidation:
    def test_undeclared_array(self):
        from repro.ir import CompileError, Statement, Schedule, Domain
        p = parse_scop("scop v(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) A[i] = 1.0; }")
        stmt = p.statements[0]
        bad = stmt.with_body(stmt.body.rename_arrays({"A": "Z"}))
        broken = p.with_statement("S1", bad)
        with pytest.raises(CompileError):
            validate_program(broken)

    def test_rank_mismatch(self):
        from repro.ir import Assignment, CompileError, Const, Ref, var
        p = parse_scop("scop v(N) { array A[N] output; "
                       "for (i = 0; i < N; i++) A[i] = 1.0; }")
        stmt = p.statements[0]
        bad_body = Assignment(Ref("A", (var("i"), var("i"))), "=", Const(1.0))
        with pytest.raises(CompileError):
            validate_program(p.with_statement("S1", stmt.with_body(bad_body)))
