"""Schedule-tree construction tests."""

import pytest

from repro.ir import parse_scop
from repro.ir.schedtree import (BandNode, LeafNode, SequenceNode,
                                fusion_partners, render_tree,
                                schedule_tree, tree_depth)
from repro.transforms import fuse, interchange, tile


class TestStructure:
    def test_gemm_tree_shape(self, gemm):
        tree = schedule_tree(gemm)
        # outermost: the shared i band
        assert isinstance(tree, BandNode) and tree.expr == "i"
        # inside: a sequence of S1's j loop and S2's k/j nest
        assert isinstance(tree.child, SequenceNode)
        assert len(tree.child.children) == 2

    def test_statement_order_preserved(self, gemm):
        assert schedule_tree(gemm).statements() == ("S1", "S2")

    def test_stream_single_leaf_chain(self, stream):
        tree = schedule_tree(stream)
        assert isinstance(tree, BandNode)
        assert isinstance(tree.child, LeafNode)

    def test_jacobi_sequence_under_time_band(self, jacobi2d):
        tree = schedule_tree(jacobi2d)
        assert isinstance(tree, BandNode) and tree.expr == "t"
        assert isinstance(tree.child, SequenceNode)

    def test_tiled_band_marked(self, stream):
        tree = schedule_tree(tile(stream, [1], 8))
        assert isinstance(tree, BandNode)
        assert tree.is_tile

    def test_render_contains_nodes(self, gemm):
        text = render_tree(gemm)
        assert "band [i]" in text
        assert "leaf S1" in text and "leaf S2" in text
        assert "sequence" in text


class TestFusionView:
    def test_unfused_gemm_partners(self, gemm):
        partners = fusion_partners(gemm)
        assert partners["S1"] == ("S1",)
        assert partners["S2"] == ("S2",)

    def test_fused_statements_share_band(self, gemm):
        aligned = interchange(gemm, 3, 5, stmts=["S2"])
        fused = fuse(aligned, 2)
        partners = fusion_partners(fused)
        assert set(partners["S1"]) == {"S1", "S2"}

    def test_depths(self, gemm):
        assert tree_depth(gemm, "S1") == 2
        assert tree_depth(gemm, "S2") == 3

    def test_depth_after_tiling(self, stream):
        tiled = tile(stream, [1], 8)
        assert tree_depth(tiled, "S1") == 2  # tile band + point band

    def test_unknown_statement(self, gemm):
        with pytest.raises(KeyError):
            tree_depth(gemm, "S99")


class TestSiblingNameReuse:
    def test_sibling_loops_not_merged(self):
        # two sibling loops both named i must be two bands in a sequence
        p = parse_scop("""
        scop two(N) {
          array A[N] output;
          array B[N] output;
          for (i = 0; i < N; i++)
            A[i] = A[i] + 1.0;
          for (i = 0; i < N; i++)
            B[i] = B[i] * 2.0;
        }
        """)
        tree = schedule_tree(p)
        assert isinstance(tree, SequenceNode)
        assert all(isinstance(c, BandNode) for c in tree.children)
