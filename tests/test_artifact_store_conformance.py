"""Backend conformance suite for the artifact-store contract.

One suite, every backend (zenml-style): each scenario is parametrized
over every backend registered in ``repro.storage.STORE_BACKENDS``, so
the in-memory executable spec and the sharded local store — and any
backend a plugin registers — must answer put/get/overwrite/delete/
compaction/corruption/concurrency questions identically.  Scenarios
that require real files (corruption injection, cross-process writers,
external compaction) key off the backend's ``on_disk`` capability flag.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.storage import (STORAGE_SCHEMA, STORE_BACKENDS,
                           LocalShardedStore, StoreError, open_store,
                           shard_of)

BACKENDS = STORE_BACKENDS.names()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(backend, tmp_path):
    return open_store(tmp_path / "store", backend)


def reopen(store):
    """A second instance over the same root (fresh index, same data)."""
    return open_store(store.root, store.name)


# ----------------------------------------------------------------------
# basic stream semantics
# ----------------------------------------------------------------------
class TestBasics:
    def test_registry_has_both_builtins(self):
        assert "local" in BACKENDS
        assert "memory" in BACKENDS

    def test_roundtrip(self, store):
        store.append("s", "k", {"x": 1})
        assert store.read("s", "k") == {"x": 1}
        assert store.read("s", "missing") is None
        assert store.contains("s", "k")
        assert not store.contains("s", "missing")

    def test_open_empty_stream(self, store):
        stats = store.open("s")
        assert stats.entries == 0
        assert store.list("s") == ()

    def test_overwrite_last_write_wins(self, store):
        for i in range(5):
            store.append("s", "k", [i])
        assert store.read("s", "k") == [4]
        assert store.stream_stats("s").superseded == 4
        assert store.stream_stats("s").entries == 1

    def test_list_sorted(self, store):
        for key in ("b", "a", "c"):
            store.append("s", key, key)
        assert store.list("s") == ("a", "b", "c")

    def test_delete(self, store):
        store.append("s", "k", 1)
        assert store.delete("s", "k") is True
        assert store.read("s", "k") is None
        assert not store.contains("s", "k")
        assert store.delete("s", "k") is False  # idempotent no-op
        assert store.delete("s", "never-existed") is False

    def test_put_after_delete_revives(self, store):
        store.append("s", "k", "old")
        store.delete("s", "k")
        store.append("s", "k", "new")
        assert store.read("s", "k") == "new"
        assert reopen(store).read("s", "k") == "new"

    def test_streams_isolated(self, store):
        store.append("a", "k", "in-a")
        store.append("b", "k", "in-b")
        assert store.read("a", "k") == "in-a"
        assert store.read("b", "k") == "in-b"
        store.delete("a", "k")
        assert store.read("a", "k") is None
        assert store.read("b", "k") == "in-b"
        assert store.streams() == ("a", "b")

    def test_drop_stream(self, store):
        store.append("a", "k", 1)
        store.append("b", "k", 2)
        store.drop("a")
        assert store.read("a", "k") is None
        assert store.read("b", "k") == 2
        assert "a" not in store.streams()


# ----------------------------------------------------------------------
# payload fidelity
# ----------------------------------------------------------------------
class TestPayloads:
    NESTED = {"unicode": "héllo ☃", "nested": [1, {"a": [None]}],
              "float": 1.5, "neg": -0.125, "big": 2 ** 40,
              "bool": True, "empty": [], "text": "line\nbreak\ttab"}

    def test_nested_payload_roundtrip(self, store):
        store.append("s", "k", self.NESTED)
        assert store.read("s", "k") == self.NESTED
        assert reopen(store).read("s", "k") == self.NESTED

    def test_payloads_are_json_round_trips(self, store):
        """Backends return equal *copies*, like any store with real I/O."""
        payload = {"a": [1, 2]}
        store.append("s", "k", payload)
        got = store.read("s", "k")
        assert got == payload
        got["a"].append(3)  # mutating the copy must not leak back
        assert store.read("s", "k") == {"a": [1, 2]}

    def test_non_serializable_payload_rejected(self, store):
        with pytest.raises(TypeError):
            store.append("s", "k", object())
        assert store.read("s", "k") is None  # nothing half-written

    def test_empty_and_weird_keys(self, store):
        for key in ("", " ", "a/b", '["json",1]', "ünïcode"):
            store.append("s", key, {"key": key})
        for key in ("", " ", "a/b", '["json",1]', "ünïcode"):
            assert store.read("s", key) == {"key": key}
        fresh = reopen(store)
        assert fresh.list("s") == tuple(
            sorted(("", " ", "a/b", '["json",1]', "ünïcode")))


# ----------------------------------------------------------------------
# persistence across instances
# ----------------------------------------------------------------------
class TestPersistence:
    def test_survives_reopen(self, store):
        store.append("s", "k", [1, 2])
        assert reopen(store).read("s", "k") == [1, 2]

    def test_overwrites_survive_reopen(self, store):
        store.append("s", "k", "old")
        store.append("s", "k", "new")
        fresh = reopen(store)
        assert fresh.read("s", "k") == "new"
        assert fresh.stream_stats("s").superseded == 1

    def test_delete_survives_reopen(self, store):
        store.append("s", "k", 1)
        store.delete("s", "k")
        fresh = reopen(store)
        assert fresh.read("s", "k") is None
        assert fresh.stream_stats("s").tombstones == 1

    def test_distinct_roots_isolated(self, backend, tmp_path):
        a = open_store(tmp_path / "a", backend)
        b = open_store(tmp_path / "b", backend)
        a.append("s", "k", "a")
        assert b.read("s", "k") is None


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_compaction_preserves_live_entries(self, store):
        for i in range(20):
            store.append("s", f"k{i % 5}", {"round": i})
        store.delete("s", "k4")
        before = {key: store.read("s", key) for key in store.list("s")}
        report = store.compact("s")
        assert report.kept == 4
        assert report.dropped_superseded == 15 + 1  # overwrites + delete
        assert report.dropped_tombstones == 1
        after = {key: store.read("s", key) for key in store.list("s")}
        assert after == before
        # a fresh instance over the compacted data agrees
        fresh = reopen(store)
        assert {k: fresh.read("s", k) for k in fresh.list("s")} == before

    def test_compaction_resets_waste_counters(self, store):
        store.append("s", "k", 1)
        store.append("s", "k", 2)
        store.delete("s", "k")
        store.compact("s")
        stats = store.stream_stats("s")
        assert stats.superseded == 0
        assert stats.tombstones == 0
        assert stats.corrupt == 0
        assert stats.entries == 0

    def test_compact_empty_stream(self, store):
        report = store.compact("s")
        assert report.kept == 0
        assert report.dropped == 0

    def test_compaction_shrinks_files(self, store):
        if not store.on_disk:
            pytest.skip("no files to shrink")
        for i in range(50):
            store.append("s", "hot-key", {"i": i, "pad": "x" * 200})
        before = store.stream_stats("s").bytes
        store.compact("s")
        after = store.stream_stats("s").bytes
        assert after < before / 10


# ----------------------------------------------------------------------
# corruption containment (file backends)
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture(autouse=True)
    def _on_disk_only(self, store):
        if not store.on_disk:
            pytest.skip("corruption injection needs real files")

    def _single_shard(self, store, stream):
        [path] = [p for p in store.shard_paths(stream)
                  if p.stat().st_size]
        return path

    def test_garbage_lines_skipped_and_counted(self, store):
        store.append("s", "good", {"a": 1})
        path = self._single_shard(store, "s")
        with open(path, "a") as handle:
            handle.write("{not json\n")
            handle.write(json.dumps({"schema": 999, "key": "x",
                                     "payload": 1}) + "\n")
            handle.write(json.dumps({"missing": "fields"}) + "\n")
        fresh = reopen(store)
        assert fresh.read("s", "good") == {"a": 1}
        assert fresh.stream_stats("s").corrupt == 3

    def test_truncated_tail_skipped(self, store):
        """A mid-line crash loses only the torn record."""
        store.append("s", "k1", {"a": 1})
        store.append("s", "k1", {"a": 2})
        path = self._single_shard(store, "s")
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last record mid-payload
        fresh = reopen(store)
        assert fresh.read("s", "k1") == {"a": 1}  # previous write wins
        assert fresh.stream_stats("s").corrupt == 1

    def test_append_after_torn_tail_heals_missing_newline(self, store):
        """An append onto a crashed shard must not fuse with the torn
        fragment — the new record gets its own line."""
        store.append("s", "k1", {"a": 1})
        path = self._single_shard(store, "s")
        path.write_bytes(path.read_bytes()[:-5])  # tear, drop newline
        healed = reopen(store)
        healed.append("s", "k1", {"b": 2})  # same key -> same shard
        assert healed.read("s", "k1") == {"b": 2}
        fresh = reopen(store)
        assert fresh.read("s", "k1") == {"b": 2}
        assert fresh.stream_stats("s").corrupt == 1  # just the fragment

    def test_compaction_repairs_corruption(self, store):
        store.append("s", "good", {"a": 1})
        path = self._single_shard(store, "s")
        with open(path, "a") as handle:
            handle.write('{"torn": tru')  # no newline: torn tail
        fresh = reopen(store)
        report = fresh.compact("s")
        assert report.dropped_corrupt == 1
        assert fresh.read("s", "good") == {"a": 1}
        # after the rewrite the shard is pristine for the next scanner
        again = reopen(store)
        assert again.stream_stats("s").corrupt == 0
        assert again.read("s", "good") == {"a": 1}

    def test_corrupt_line_inside_shard_does_not_shadow_later_lines(
            self, store):
        store.append("s", "k1", 1)
        path = self._single_shard(store, "s")
        with open(path, "a") as handle:
            handle.write("garbage garbage\n")
        store2 = reopen(store)
        store2.append("s", "k2", 2)
        fresh = reopen(store)
        live = {k: fresh.read("s", k) for k in fresh.list("s")}
        assert live.get("k1") == 1
        assert live.get("k2") == 2


# ----------------------------------------------------------------------
# sharding (local backend specifics)
# ----------------------------------------------------------------------
class TestSharding:
    def test_keys_spread_across_shards(self, tmp_path):
        store = LocalShardedStore(tmp_path / "s", shards=8)
        for i in range(64):
            store.append("s", f"key-{i}", i)
        assert len(store.shard_paths("s")) > 1
        assert sorted(store.list("s")) == sorted(
            f"key-{i}" for i in range(64))

    def test_key_always_lands_in_its_digest_shard(self, tmp_path):
        store = LocalShardedStore(tmp_path / "s", shards=8)
        store.append("s", "some-key", 1)
        expected = store.shard_path("s", shard_of("some-key", 8))
        assert expected.exists()
        assert b"some-key" in expected.read_bytes()

    def test_meta_pins_shard_count(self, tmp_path):
        """Reconfiguring shard counts must not re-home existing keys."""
        first = LocalShardedStore(tmp_path / "s", shards=2)
        for i in range(16):
            first.append("s", f"key-{i}", i)
        # a differently-configured process appends to the same store
        second = LocalShardedStore(tmp_path / "s", shards=64)
        second.append("s", "key-0", "updated")
        assert len(second.shard_paths("s")) <= 2  # pinned by meta.json
        fresh = LocalShardedStore(tmp_path / "s", shards=64)
        assert fresh.read("s", "key-0") == "updated"
        assert len(fresh.list("s")) == 16

    def test_rejects_bad_stream_names(self, tmp_path):
        store = LocalShardedStore(tmp_path / "s")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.append(bad, "k", 1)

    def test_rejects_bad_shard_counts(self, tmp_path):
        for bad in (0, -1, 257):
            with pytest.raises(ValueError):
                LocalShardedStore(tmp_path / "s", shards=bad)

    def test_stale_index_recovers_after_external_compaction(
            self, tmp_path):
        """Offsets move under a reader when another process compacts."""
        writer = LocalShardedStore(tmp_path / "s")
        for i in range(10):
            writer.append("s", "churn", {"i": i})
            writer.append("s", "stable", {"i": i})
        reader = LocalShardedStore(tmp_path / "s")
        assert reader.read("s", "stable") == {"i": 9}  # index built
        writer.compact("s")  # offsets in reader's index are now stale
        assert reader.read("s", "stable") == {"i": 9}
        assert reader.read("s", "churn") == {"i": 9}


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def _mp_writer(root, backend, worker, rounds):
    store = open_store(root, backend)
    for i in range(rounds):
        # every worker hammers the SAME keys: the lost-update scenario
        store.append("s", f"key-{i % 4}", {"worker": worker, "i": i})
        store.append("s", f"own-{worker}-{i}", i)


class TestConcurrency:
    def test_threaded_writers_all_land(self, store):
        def work(worker):
            for i in range(25):
                store.append("s", f"w{worker}-k{i}", [worker, i])
        threads = [threading.Thread(target=work, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store.list("s")) == 8 * 25
        fresh = reopen(store)
        for worker in range(8):
            for i in range(25):
                assert fresh.read("s", f"w{worker}-k{i}") == [worker, i]
        assert fresh.stream_stats("s").corrupt == 0

    def test_threaded_same_key_overwrites_are_whole(self, store):
        """Concurrent writers to ONE key: some write wins, none tears."""
        def work(worker):
            for i in range(20):
                store.append("s", "contested", {"w": worker, "i": i})
        threads = [threading.Thread(target=work, args=(w,))
                   for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = store.read("s", "contested")
        assert final["w"] in range(6) and final["i"] in range(20)
        stats = reopen(store).stream_stats("s")
        assert stats.corrupt == 0
        assert stats.superseded == 6 * 20 - 1

    def test_multiprocess_writers_never_tear_lines(self, store):
        """Satellite: concurrent processes appending the same keys must
        interleave whole records (O_APPEND + one write), never torn
        fragments."""
        if not store.on_disk:
            pytest.skip("cross-process visibility needs real files")
        ctx = multiprocessing.get_context()
        workers = [ctx.Process(target=_mp_writer,
                               args=(store.root, store.name, w, 20))
                   for w in range(4)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join()
        assert all(proc.exitcode == 0 for proc in workers)
        # every raw line in every shard decodes: no torn appends
        fresh = reopen(store)
        for path in fresh.shard_paths("s"):
            data = path.read_bytes()
            assert data.endswith(b"\n")
            for raw in data.splitlines():
                record = json.loads(raw)
                assert record["schema"] == STORAGE_SCHEMA
        assert fresh.stream_stats("s").corrupt == 0
        # contested keys hold one of the written values; own keys all
        for i in range(4):
            value = fresh.read("s", f"key-{i}")
            assert value["worker"] in range(4)
        for worker in range(4):
            for i in range(20):
                assert fresh.read("s", f"own-{worker}-{i}") == i

    def test_short_write_raises_instead_of_tearing(self, store,
                                                   monkeypatch):
        """The atomic-append invariant is checked, not assumed: a short
        ``write()`` surfaces as StoreError rather than a torn prefix."""
        if not isinstance(store, LocalShardedStore):
            pytest.skip("spec backend has no write syscalls")
        import os as os_module

        real_write = os_module.write
        monkeypatch.setattr("repro.storage.local.os.write",
                            lambda fd, data: real_write(fd, data[:3]))
        with pytest.raises(StoreError):
            store.append("s", "k", {"a": 1})
