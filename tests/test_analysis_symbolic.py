"""Symbolic dependence analysis + cross-validation with the witness
analyzer on the benchmark suites."""

import pytest

from repro.analysis import (dependences, symbolic_dependences,
                            uniform_coverage)
from repro.ir import parse_scop
from repro.suites import lore, polybench, tsvc


def _symbolic_set(program):
    return {(d.kind, d.source, d.target, d.array, d.distance)
            for d in symbolic_dependences(program)}


class TestSymbolicBasics:
    def test_recurrence_distance(self, recur):
        deps = symbolic_dependences(recur)
        raw = [d for d in deps if d.kind == "RAW"]
        assert raw and raw[0].distance == (1,)
        assert raw[0].loop_carried

    def test_stream_no_dependences(self, stream):
        assert symbolic_dependences(stream) == []

    def test_gemm_reduction_self_raw(self, gemm):
        deps = _symbolic_set(gemm)
        assert ("RAW", "S2", "S2", "C", (0, 1, 0)) in deps

    def test_cross_statement_loop_independent(self, gemm):
        # S1 and S2 genuinely share only the i loop (their j loops are
        # siblings), so the symbolic distance is over ('i',)
        deps = _symbolic_set(gemm)
        assert ("RAW", "S1", "S2", "C", (0,)) in deps

    def test_anti_dependence_direction(self):
        p = parse_scop("""
        scop war(N) {
          array A[N+1] output;
          for (i = 0; i < N; i++)
            A[i] = A[i + 1] * 2.0;
        }
        """)
        deps = symbolic_dependences(p)
        war = [d for d in deps if d.kind == "WAR"]
        assert war and war[0].distance == (1,)

    def test_backward_pairs_excluded(self):
        # the write happens before the read in iteration order only for
        # positive distances; negative ones are the WAR above, not RAW
        p = parse_scop("""
        scop fwd(N) {
          array A[N+1] output;
          for (i = 1; i < N; i++)
            A[i] = A[i - 1] + 1.0;
        }
        """)
        kinds = {d.kind for d in symbolic_dependences(p)}
        assert "RAW" in kinds

    def test_transposed_access_not_decided(self):
        p = parse_scop("""
        scop tr(N) {
          array A[N][N] output;
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              A[i][j] = A[j][i] + 1.0;
        }
        """)
        # A[j][i] pairs i with j: the *pair* is outside the uniform
        # fragment even though each reference alone is uniform
        assert symbolic_dependences(p) == []


class TestCrossValidation:
    """Every symbolic constant-distance dependence must be confirmed by
    the witness-based analyzer (soundness of the symbolic fragment)."""

    @pytest.mark.parametrize("kernel", ["gemm", "jacobi-2d", "jacobi-1d",
                                        "mvt", "atax", "heat-3d",
                                        "seidel-2d", "doitgen"])
    def test_polybench_kernels(self, kernel):
        self._check(polybench().get(kernel).program)

    @pytest.mark.parametrize("kernel", ["s000", "s233", "s319", "s321",
                                        "s1119", "s126", "s231"])
    def test_tsvc_kernels(self, kernel):
        self._check(tsvc().get(kernel).program)

    @pytest.mark.parametrize("kernel", ["prefix_sum", "blur3", "iir1",
                                        "matmat_frag", "waterfall"])
    def test_lore_kernels(self, kernel):
        self._check(lore().get(kernel).program)

    @staticmethod
    def _check(program):
        witness = dependences(program)
        witnessed = {}
        links = set()
        for dep in witness:
            key = (dep.kind, dep.source, dep.target, dep.array)
            witnessed.setdefault(key, set()).update(dep.distances)
            links.add((dep.source, dep.target, dep.array))
        for dep in symbolic_dependences(program):
            key = (dep.kind, dep.source, dep.target, dep.array)
            if key in witnessed:
                prefix_len = len(dep.distance)
                dyn = {vec[:prefix_len] for vec in witnessed[key]}
                if dep.distance in dyn:
                    continue
            # the symbolic analysis is a *may* analysis (no kill
            # analysis): a dependence or distance killed by an
            # intervening write is acceptable when a one-step witnessed
            # chain through the same array connects the pair
            chained = any(
                (dep.source, mid, dep.array) in links
                and (mid, dep.target, dep.array) in links
                for mid in {s.name for s in program.statements})
            assert chained, f"symbolic-only dependence {dep}"


class TestCoverage:
    def test_uniform_suites_mostly_covered(self):
        values = [uniform_coverage(b.program) for b in tsvc()]
        assert sum(values) / len(values) > 0.8

    def test_full_coverage_simple(self, stream, recur):
        assert uniform_coverage(stream) == 1.0
        assert uniform_coverage(recur) == 1.0
