"""Pseudo-C printer tests, including original-program round-trips."""

import pytest

from repro.codegen import scop_body_to_c, to_c
from repro.ir import parse_scop
from repro.runtime import run
from repro.transforms import fuse, interchange, parallelize, tile, vectorize


class TestOriginalPrinting:
    def test_gemm_contains_loops(self, gemm):
        text = to_c(gemm)
        assert "for (i = 0; i <= NI-1; i++)" in text
        assert "#pragma scop" in text and "#pragma endscop" in text

    def test_statement_names_annotated(self, gemm):
        text = scop_body_to_c(gemm)
        assert "// S1" in text and "// S2" in text

    def test_triangular_bound_printed(self, syrk):
        assert "j <= i" in scop_body_to_c(syrk)

    def test_guard_printed(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 2)
              A[i] = 1.0;
        }
        """)
        assert "if (i-2 >= 0)" in scop_body_to_c(p)

    def test_scalars_and_arrays_declared(self, gemm):
        text = to_c(gemm)
        assert "double alpha = 1.5;" in text
        assert "double C[NI][NJ];  // output" in text


class TestTransformedPrinting:
    def test_tile_prints_tile_loops(self, stream):
        text = scop_body_to_c(tile(stream, [1], 32))
        assert "/32" in text

    def test_point_loop_bounded_by_tile(self, stream):
        text = scop_body_to_c(tile(stream, [1], 32))
        assert "max(0, 32*t1)" in text
        assert "min(LEN-1, 32*t1+31)" in text

    def test_parallel_pragma(self, stream):
        text = scop_body_to_c(parallelize(stream, 1))
        assert "#pragma omp parallel for" in text

    def test_simd_pragma(self, stream):
        text = scop_body_to_c(vectorize(stream, 1))
        assert "#pragma omp simd" in text

    def test_fused_statements_share_loop(self, gemm):
        aligned = interchange(gemm, 3, 5, stmts=["S2"])
        fused = fuse(aligned, 2)
        text = scop_body_to_c(fused)
        # a single j loop containing S1 with the k loop after it
        assert text.count("for (j = 0; j <= NJ-1; j++)") == 1

    def test_provenance_comments(self, stream):
        text = to_c(parallelize(stream, 1))
        assert "// applied: parallel(col=1)" in text


class TestRoundTrip:
    @pytest.mark.parametrize("fixture", ["gemm", "syrk", "jacobi2d",
                                         "stream", "recur"])
    def test_print_parse_same_semantics(self, fixture, request):
        program = request.getfixturevalue(fixture)
        body = scop_body_to_c(program)
        # strip the statement-name comments; the parser renames anyway
        decls = []
        for name, value in program.scalars:
            decls.append(f"scalars {name}={value};")
        for decl in program.arrays:
            dims = "".join(f"[{d}]" for d in decl.dims)
            out = " output" if decl.name in program.outputs else ""
            decls.append(f"array {decl.name}{dims}{out};")
        source = (f"scop rt({', '.join(program.params)}) {{\n"
                  + "\n".join(decls) + "\n" + body + "\n}")
        reparsed = parse_scop(source)
        params = {p: 6 for p in program.params}
        if "T" in params:
            params["T"] = 2
        a = run(program, params)
        b = run(reparsed, params)
        assert a.checksum == pytest.approx(b.checksum)
