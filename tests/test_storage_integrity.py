"""End-to-end data integrity for the artifact plane.

Contract under test: every stored record carries a crc32 envelope;
readers never serve a record whose checksum fails (the key reads as
missing and the damage is counted); ``repro store verify`` pinpoints
corrupt/torn/mismatched lines with shard+offset diagnostics and
``--repair`` heals them — by compaction for a local store, by
read-repair from a healthy replica for a mirrored one.  The hypothesis
bit-rot property at the bottom is the headline: flip any single bit of
any shard and no reader ever returns altered data.
"""

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.storage import (INTEGRITY, LocalShardedStore, MirroredStore,
                           record_crc, record_crc_ok, repair_store,
                           scrub_kernels, verify_store)
from repro.storage.scrub import repair_kernels
from repro.testing.faults import (FaultClause, FaultPlan, corrupt_data,
                                  install_plan)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_STORE_VERIFY", raising=False)
    install_plan(None)
    yield
    install_plan(None)


def _shard_lines(store, stream):
    """[(path, line_index, decoded record), ...] over raw shard files."""
    out = []
    for path in store.shard_paths(stream):
        for i, line in enumerate(path.read_text().splitlines()):
            if line.strip():
                out.append((path, i, json.loads(line)))
    return out


def _stale_crc(store, stream, key, tampered=("tampered",)):
    """Rewrite ``key``'s newest stored line: new payload, old crc."""
    target = None
    for path, index, record in _shard_lines(store, stream):
        if record.get("key") == key and not record.get("tombstone"):
            target = (path, index, record)
    assert target is not None, f"no stored line for {key!r}"
    path, index, record = target
    record["payload"] = list(tampered)
    lines = path.read_text().splitlines()
    lines[index] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    store.refresh(stream)


# ----------------------------------------------------------------------
# the crc envelope
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_puts_and_tombstones_carry_matching_crcs(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=2)
        store.append("s", "k", {"a": 1})
        store.append("s", "gone", 7)
        store.delete("s", "gone")
        for _path, _i, record in _shard_lines(store, "s"):
            assert isinstance(record["crc"], int)
            assert record_crc_ok(record)
            if record.get("tombstone"):
                assert record["crc"] == record_crc("gone",
                                                   tombstone=True)
        assert record_crc("k", {"a": 1}) != record_crc("k", {"a": 2})

    def test_legacy_lines_without_crc_are_served(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=1)
        store.append("s", "anchor", 0)  # creates the stream dir
        path = store.shard_path("s", 0)
        with open(path, "a") as handle:
            handle.write(json.dumps({"schema": 1, "key": "old",
                                     "payload": [1, 2]}) + "\n")
        store.refresh("s")
        assert store.read("s", "old") == [1, 2]
        assert store.stream_stats("s").mismatched == 0
        report = verify_store(store)
        assert report.clean
        assert report.streams[0].legacy == 1

    def test_crc_survives_compaction(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=2)
        for i in range(8):
            store.append("s", f"k{i % 3}", {"round": i})
        store.compact("s")
        fresh = LocalShardedStore(tmp_path, shards=2)
        for _p, _i, record in _shard_lines(fresh, "s"):
            assert record_crc_ok(record)
        assert fresh.read("s", "k1") == {"round": 7}


# ----------------------------------------------------------------------
# REPRO_STORE_VERIFY
# ----------------------------------------------------------------------
class TestVerifyModes:
    def _tampered_store(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=1)
        store.append("s", "k", "v1")
        store.append("s", "k", "v2")
        _stale_crc(store, "s", "k")
        return store

    def test_read_mode_reports_the_key_missing(self, tmp_path):
        store = self._tampered_store(tmp_path)
        assert store.read("s", "k") is None  # never the tampered value
        assert store.stream_stats("s").mismatched == 1

    def test_off_mode_serves_without_checking(self, tmp_path,
                                              monkeypatch):
        store = self._tampered_store(tmp_path)
        monkeypatch.setenv("REPRO_STORE_VERIFY", "off")
        store.refresh("s")
        assert store.read("s", "k") == ["tampered"]

    def test_paranoid_mode_resurrects_the_previous_put(self, tmp_path,
                                                       monkeypatch):
        store = self._tampered_store(tmp_path)
        monkeypatch.setenv("REPRO_STORE_VERIFY", "paranoid")
        fresh = LocalShardedStore(tmp_path, shards=1)
        # the damaged line never wins the index: v1 is still good
        assert fresh.read("s", "k") == "v1"
        assert fresh.stream_stats("s").mismatched == 1

    def test_compaction_purges_mismatched_lines(self, tmp_path):
        store = self._tampered_store(tmp_path)
        report = store.compact("s")
        assert report.dropped_mismatched == 1
        fresh = LocalShardedStore(tmp_path, shards=1)
        assert fresh.read("s", "k") == "v1"  # restored from history
        assert verify_store(fresh).clean


# ----------------------------------------------------------------------
# stale compaction temp files (crash between write-temp and rename)
# ----------------------------------------------------------------------
class TestTmpOrphanGC:
    def test_orphans_are_reaped_on_stream_open(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=1)
        store.append("s", "k", 1)
        orphan = store.stream_dir("s") / "shard-00.jsonl.tmp.99999"
        orphan.write_text("half-written compaction output")
        foreign = store.stream_dir("s") / "notes.tmp.1"
        foreign.write_text("not ours")
        fresh = LocalShardedStore(tmp_path, shards=1)
        assert fresh.read("s", "k") == 1
        assert not orphan.exists()
        assert foreign.exists()  # only our naming scheme is reaped

    def test_orphan_gc_never_counts_as_damage(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=2)
        store.append("s", "k", "v")
        (store.stream_dir("s")
         / "shard-01.jsonl.tmp.4242").write_text("{")
        fresh = LocalShardedStore(tmp_path, shards=2)
        stats = fresh.stream_stats("s")
        assert stats.corrupt == 0 and stats.mismatched == 0
        assert verify_store(fresh).clean


# ----------------------------------------------------------------------
# corruption fault kinds
# ----------------------------------------------------------------------
class TestCorruptionFaults:
    def test_data_kinds_are_deterministic(self):
        data = b'{"schema":1,"key":"k","payload":3,"crc":9}\n'
        flip = FaultClause(site="s", kind="bitflip")
        once, twice = corrupt_data(flip, data), corrupt_data(flip, data)
        assert once == twice != data
        assert len(once) == len(data)
        diff = [i for i, (a, b) in enumerate(zip(once, data)) if a != b]
        assert len(diff) == 1
        assert bin(once[diff[0]] ^ data[diff[0]]).count("1") == 1
        assert once.endswith(b"\n")  # the framing newline is spared

        chop = FaultClause(site="s", kind="truncate", nbytes=6)
        assert corrupt_data(chop, data) == data[:-6]
        junk = FaultClause(site="s", kind="garbage")
        assert corrupt_data(junk, data).endswith(b"\n")

    def test_scheduled_bitflip_is_never_served(self, tmp_path):
        install_plan(FaultPlan.parse("store.append:bitflip:times=1"))
        store = LocalShardedStore(tmp_path, shards=1)
        store.append("s", "poisoned", {"x": 1})
        store.append("s", "healthy", {"x": 2})
        install_plan(None)
        fresh = LocalShardedStore(tmp_path, shards=1)
        assert fresh.read("s", "poisoned") is None
        assert fresh.read("s", "healthy") == {"x": 2}
        assert not verify_store(fresh).clean

    def test_per_replica_sites_corrupt_one_copy(self, tmp_path):
        install_plan(FaultPlan.parse("store.append.1:garbage:times=1"))
        store = MirroredStore(str(tmp_path))
        store.append("s", "k", "value")
        install_plan(None)
        report = verify_store(store)
        assert not report.clean
        assert report.replicas[0].clean  # the primary never saw it
        assert not report.replicas[1].clean
        assert store.read("s", "k") == "value"  # served and healed
        repair_store(store)
        assert verify_store(store).clean


# ----------------------------------------------------------------------
# the scrubber and `repro store verify`
# ----------------------------------------------------------------------
class TestScrub:
    def test_diagnostics_carry_shard_and_offset(self, tmp_path):
        store = LocalShardedStore(tmp_path, shards=1)
        store.append("s", "a", 1)
        store.append("s", "b", 2)
        _stale_crc(store, "s", "b")
        path = store.shard_path("s", 0)
        with open(path, "ab") as handle:
            handle.write(b"}}}garbage\n")
            handle.write(b'{"schema":1,"key":"torn","payload"')
        report = verify_store(store)
        kinds = {issue.kind: issue for issue in report.issues()}
        assert set(kinds) == {"mismatched", "corrupt", "torn"}
        for issue in kinds.values():
            assert issue.location == path.name
            assert issue.offset is not None
            assert issue.render()
        stream = report.streams[0]
        assert (stream.mismatched, stream.corrupt, stream.torn) \
            == (1, 1, 1)

    def test_mirrored_repair_restores_byte_identical_reads(self,
                                                           tmp_path):
        store = MirroredStore(str(tmp_path))
        expected = {}
        for i in range(6):
            expected[f"k{i}"] = {"value": i, "blob": "x" * i}
            store.append("s", f"k{i}", expected[f"k{i}"])
        _stale_crc(store.children[0], "s", "k3")
        assert not verify_store(store).clean
        report = repair_store(store)
        assert report.read_repairs >= 1
        fresh = MirroredStore(str(tmp_path))
        assert verify_store(fresh).clean
        for key, value in expected.items():
            assert fresh.read("s", key) == value

    def test_cli_verify_detects_and_repairs(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        store_root = cache / "store"
        store = LocalShardedStore(store_root, shards=1)
        store.append("results", "k", "v1")
        store.append("results", "k", "v2")
        args = ["store", "verify", "--cache-dir", str(cache),
                "--backend", "local"]
        assert main(args) == 0
        capsys.readouterr()
        _stale_crc(store, "results", "k")
        assert main(args) == 1  # damage means a nonzero exit
        out = capsys.readouterr().out
        assert "mismatched" in out and "DAMAGED" in out
        assert main(args + ["--repair", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert doc["repair"]["dropped"] == 1
        fresh = LocalShardedStore(store_root, shards=1)
        assert fresh.read("results", "k") == "v1"

    def test_scrub_counters_reach_stats_and_metrics(self, tmp_path,
                                                    monkeypatch,
                                                    capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        INTEGRITY.reset()
        store = LocalShardedStore(tmp_path / "store", shards=1)
        store.append("results", "k", "v")
        _stale_crc(store, "results", "k")
        assert main(["store", "verify", "--backend", "local"]) == 1
        capsys.readouterr()
        assert main(["store", "stats", "--backend", "local",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["integrity"]["scrub_runs"] >= 1
        assert doc["integrity"]["scrub_flagged"] >= 1
        assert "mismatched" in doc["streams"]["results"]

        from repro.serve import ServeConfig, ServeDaemon
        daemon = ServeDaemon(ServeConfig(port=0, journal=False))
        snapshot = daemon.metrics.snapshot()
        assert snapshot["gauges"]["integrity"]["scrub_runs"] >= 1


# ----------------------------------------------------------------------
# the kernel cache
# ----------------------------------------------------------------------
class TestKernelScrub:
    def _install(self, root, source="int x;", signature="cc-1.0"):
        import hashlib
        root.mkdir(parents=True, exist_ok=True)
        digest = hashlib.sha256()
        digest.update(source.encode())
        digest.update(signature.encode())
        key = digest.hexdigest()[:32]
        so = root / f"{key}.so"
        so.write_bytes(b"\x7fELF-fake-binary")
        (root / f"{key}.c").write_text(source)
        meta = {"signature": signature, "cc": "cc", "version": "1.0",
                "flags": [], "so_sha256": hashlib.sha256(
                    so.read_bytes()).hexdigest()}
        (root / f"{key}.json").write_text(json.dumps(meta))
        return so

    def test_intact_entries_pass(self, tmp_path):
        self._install(tmp_path)
        report = scrub_kernels(tmp_path)
        assert report["checked"] == 1 and report["flagged"] == 0

    def test_binary_bitrot_is_flagged_and_evicted(self, tmp_path):
        so = self._install(tmp_path)
        blob = bytearray(so.read_bytes())
        blob[4] ^= 0x10
        so.write_bytes(bytes(blob))
        report = scrub_kernels(tmp_path)
        assert report["flagged"] == 1
        assert "hash" in report["issues"][0].detail
        assert repair_kernels(tmp_path) == 1
        assert not so.exists()
        assert scrub_kernels(tmp_path)["checked"] == 0

    def test_missing_source_or_meta_is_flagged(self, tmp_path):
        so = self._install(tmp_path)
        so.with_suffix(".c").unlink()
        assert scrub_kernels(tmp_path)["flagged"] == 1
        so.with_suffix(".json").unlink()
        flagged = {i.detail for i in scrub_kernels(tmp_path)["issues"]}
        assert flagged == {"missing .json metadata",
                           "missing .c source"}

    def test_legacy_meta_without_hash_never_fails(self, tmp_path):
        so = self._install(tmp_path)
        meta = json.loads(so.with_suffix(".json").read_text())
        del meta["so_sha256"]
        so.with_suffix(".json").write_text(json.dumps(meta))
        assert scrub_kernels(tmp_path)["flagged"] == 0


# ----------------------------------------------------------------------
# compaction reporting (reclaimed bytes)
# ----------------------------------------------------------------------
class TestCompactReporting:
    def test_reclaimed_bytes_in_table_and_json(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        store = LocalShardedStore(cache / "store", shards=2)
        for i in range(20):
            store.append("results", "hot", {"round": i})
        assert main(["store", "compact", "--cache-dir", str(cache),
                     "--backend", "local", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (entry,) = doc["compacted"]
        assert entry["reclaimed_bytes"] > 0
        assert entry["bytes_before"] - entry["bytes_after"] \
            == entry["reclaimed_bytes"]
        for i in range(10):
            store.append("results", "hot", {"round": i})
        assert main(["store", "compact", "--cache-dir", str(cache),
                     "--backend", "local"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out and "->" in out


# ----------------------------------------------------------------------
# the bit-rot property (hypothesis)
# ----------------------------------------------------------------------
FIXED_PAYLOADS = {
    "alpha": {"matrix": [1, 2, 3], "ok": True},
    "beta": "a longer string payload with room for damage",
    "gamma": [0.5, None, "mixed"],
    "delta": 12345,
}


def _seeded_local(root):
    store = LocalShardedStore(root, shards=4)
    for key, payload in FIXED_PAYLOADS.items():
        store.append("s", key, payload)
    for stream in store.streams():
        store.compact(stream)  # every remaining line is live
    return store


def _flip(path: Path, offset: int, mask: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset % len(blob)] ^= mask
    path.write_bytes(bytes(blob))


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_bitrot_local_never_serves_altered_data(tmp_path_factory, data):
    """Flip any single byte of any shard: reads return the original
    payload or report the key missing and count the damage — never
    altered data."""
    root = tmp_path_factory.mktemp("bitrot")
    store = _seeded_local(root)
    shards = store.shard_paths("s")
    path = data.draw(st.sampled_from(shards), label="shard")
    size = path.stat().st_size
    offset = data.draw(st.integers(0, size - 1), label="offset")
    mask = data.draw(st.sampled_from((0x01, 0x08, 0x20, 0x80)),
                     label="mask")
    _flip(path, offset, mask)

    fresh = LocalShardedStore(root, shards=4)
    damage_seen = 0
    for key, expected in FIXED_PAYLOADS.items():
        got = fresh.read("s", key)
        assert got == expected or got is None, (
            f"altered data served for {key!r}: {got!r}")
        if got is None:
            damage_seen += 1
    if damage_seen:
        # a flip inside the key field indexes the record under a
        # mutated key: the read path sees a plain miss, but the crc
        # covers the key so the scrubber always flags the damage
        assert not verify_store(fresh).clean


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bitrot_mirrored_heals_and_serves_originals(tmp_path_factory,
                                                    data):
    """Same flip, mirrored store: every key still reads back exactly,
    and the heal persists across a reopen."""
    root = tmp_path_factory.mktemp("bitrot-mir")
    store = MirroredStore(str(root))
    for key, payload in FIXED_PAYLOADS.items():
        store.append("s", key, payload)
    for stream in store.streams():
        store.compact(stream)
    victim = data.draw(st.sampled_from((0, 1)), label="replica")
    shards = store.children[victim].shard_paths("s")
    path = data.draw(st.sampled_from(shards), label="shard")
    offset = data.draw(st.integers(0, path.stat().st_size - 1),
                       label="offset")
    _flip(path, offset, data.draw(
        st.sampled_from((0x01, 0x40)), label="mask"))

    fresh = MirroredStore(str(root))
    for key, expected in FIXED_PAYLOADS.items():
        assert fresh.read("s", key) == expected
    again = MirroredStore(str(root))
    for key, expected in FIXED_PAYLOADS.items():
        assert again.read("s", key) == expected


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
