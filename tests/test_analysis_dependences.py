"""Dependence analysis tests."""

import pytest

from repro.ir import parse_scop
from repro.analysis import (KIND_RAW, KIND_WAR, KIND_WAW, dependences,
                            is_legal_schedule, is_parallel_dim,
                            parallel_violations, schedule_violations)
from repro.transforms import interchange, tile


def kinds_of(deps):
    return {(d.kind, d.source, d.target, d.array) for d in deps}


class TestKinds:
    def test_gemm_dependences(self, gemm):
        ks = kinds_of(dependences(gemm))
        assert (KIND_RAW, "S1", "S2", "C") in ks
        assert (KIND_WAW, "S1", "S2", "C") in ks
        assert (KIND_RAW, "S2", "S2", "C") in ks

    def test_syrk_has_all_three_kinds(self, syrk):
        # §2.1: *= and += induce WAW, WAR and RAW on C
        kinds = {d.kind for d in dependences(syrk)}
        assert kinds == {KIND_RAW, KIND_WAW, KIND_WAR}

    def test_stream_has_no_dependences(self, stream):
        assert dependences(stream) == []

    def test_recurrence_distance_one(self, recur):
        deps = dependences(recur)
        raw = [d for d in deps if d.kind == KIND_RAW]
        assert raw and raw[0].constant_distance == (1,)
        assert raw[0].loop_carried

    def test_jacobi_cross_statement(self, jacobi2d):
        ks = kinds_of(dependences(jacobi2d))
        assert (KIND_RAW, "S1", "S2", "B") in ks
        assert (KIND_RAW, "S2", "S1", "A") in ks


class TestDistances:
    def test_reduction_distance(self, gemm):
        deps = dependences(gemm)
        self_raw = [d for d in deps
                    if d.kind == KIND_RAW and d.source == d.target == "S2"]
        assert self_raw[0].constant_distance == (0, 1, 0)

    def test_loop_independent(self, gemm):
        deps = dependences(gemm)
        cross = [d for d in deps
                 if d.kind == KIND_RAW and d.source == "S1"
                 and d.target == "S2"]
        assert cross[0].constant_distance == (0, 0)
        assert not cross[0].loop_carried


class TestLegality:
    def test_original_is_legal(self, gemm, syrk, jacobi2d):
        for p in (gemm, syrk, jacobi2d):
            assert is_legal_schedule(p, dependences(p))

    def test_legal_interchange(self, gemm):
        deps = dependences(gemm)
        t = interchange(gemm, 3, 5, stmts=["S2"])
        assert is_legal_schedule(t, deps)

    def test_illegal_interchange_detected(self, gemm):
        deps = dependences(gemm)
        t = interchange(gemm, 1, 3, stmts=["S2"])  # pull k above i for S2 only
        violations = schedule_violations(t, deps)
        assert violations

    def test_recurrence_reversal_illegal(self, recur):
        from repro.ir import LoopDim, var
        deps = dependences(recur)
        stmt = recur.statements[0]
        sched = stmt.schedule.with_dim(1, LoopDim(var("i") * -1))
        reversed_p = recur.with_statement("S1", stmt.with_schedule(sched))
        assert not is_legal_schedule(reversed_p, deps)

    def test_tile_gemm_band_illegal_without_fusion(self, gemm):
        # blocking i with the mismatched inner dims reorders S1 vs S2
        deps = dependences(gemm)
        t = tile(gemm, [1, 3], 4)
        assert not is_legal_schedule(t, deps)


class TestParallelism:
    def test_gemm_outer_parallel(self, gemm):
        assert is_parallel_dim(gemm, dependences(gemm), 1)

    def test_gemm_reduction_loop_not_parallel(self, gemm):
        assert not is_parallel_dim(gemm, dependences(gemm), 3)

    def test_stream_parallel(self, stream):
        assert is_parallel_dim(stream, dependences(stream), 1)

    def test_recurrence_not_parallel(self, recur):
        assert not is_parallel_dim(recur, dependences(recur), 1)

    def test_violations_name_the_dependence(self, recur):
        deps = dependences(recur)
        violations = parallel_violations(recur, deps, 1)
        assert violations and violations[0].array == "X"


class TestMemoization:
    def test_cached_identity(self, gemm):
        assert dependences(gemm) is dependences(gemm)

    def test_different_programs_not_shared(self, gemm, syrk):
        assert dependences(gemm) is not dependences(syrk)

    def test_explicit_params_cached_separately(self, gemm):
        default = dependences(gemm)
        explicit = dependences(gemm, {"NI": 10, "NJ": 10, "NK": 10})
        assert default is dependences(gemm)
        assert explicit is dependences(gemm, {"NI": 10, "NJ": 10,
                                              "NK": 10})
        assert default is not explicit


class TestTwoSizeConcretization:
    """Witnesses are collected at two sizes and keep their own binding."""

    def test_witnesses_carry_both_bindings(self, gemm):
        deps = dependences(gemm)
        sizes = set()
        for dep in deps:
            for src, _tgt in dep.witnesses:
                env = dict(src[1])
                sizes.add(env.get("NI"))
        assert sizes == {10, 13}

    def test_long_distance_dependence_needs_larger_size(self):
        # the RAW distance is 11: the consumer's domain is empty at the
        # default size 10, so a single-size concretization misses the
        # class entirely and would bless an illegal statement reordering
        p = parse_scop("""
        scop longdist(N) {
          array A[N] output;
          array B[N] output;
          for (i = 0; i < N; i++)
            A[i] = 1.0;
          for (i = 11; i < N; i++)
            B[i] = A[i - 11];
        }
        """)
        only_small = dependences(p, {"N": 10})
        assert only_small == []
        merged = dependences(p)
        carried = [d for d in merged if d.loop_carried]
        assert carried and carried[0].constant_distance == (11,)

        from repro.ir import ConstDim
        s1 = p.statements[0]
        moved = p.with_statement(
            s1.name,
            s1.with_schedule(s1.schedule.with_dim(0, ConstDim(2))))
        assert schedule_violations(moved, merged)
        assert not schedule_violations(moved, only_small)
