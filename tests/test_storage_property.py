"""Property-based equivalence: file-backed backends vs in-memory spec.

Hypothesis drives arbitrary interleavings of put/get/delete/compact/
reopen/list over the same keyspace through a :class:`LocalShardedStore`
(and a :class:`MirroredStore` over two of them) and the
:class:`InMemoryStore` executable specification and requires
observationally identical answers — including the waste counters
(superseded / tombstones), which both backends must account the same
way for ``repro store stats`` to mean anything.  ``reopen`` swaps in a
fresh instance over the same root, so index rebuilds from shard files
are exercised mid-sequence, not just at the end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import InMemoryStore, LocalShardedStore, MirroredStore


def _local(root):
    return LocalShardedStore(root / "local", shards=4)


def _mirrored(root):
    # deliberately different shard counts per replica: key placement
    # must never leak into observable behaviour
    return MirroredStore(str(root / "mir"), children=[
        LocalShardedStore(root / "mir" / "replica-0", shards=2),
        LocalShardedStore(root / "mir" / "replica-1", shards=4)])


FACTORIES = {"local": _local, "mirrored": _mirrored}

KEYS = ("alpha", "beta", "gamma", "delta", "")
STREAMS = ("s1", "s2")

payloads = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=8),
    st.lists(st.integers(0, 9), max_size=3),
    st.dictionaries(st.sampled_from(("a", "b")),
                    st.integers(0, 99), max_size=2),
    st.none() | st.booleans(),
)

ops = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(STREAMS),
              st.sampled_from(KEYS), payloads),
    st.tuples(st.just("get"), st.sampled_from(STREAMS),
              st.sampled_from(KEYS)),
    st.tuples(st.just("delete"), st.sampled_from(STREAMS),
              st.sampled_from(KEYS)),
    st.tuples(st.just("list"), st.sampled_from(STREAMS)),
    st.tuples(st.just("stats"), st.sampled_from(STREAMS)),
    st.tuples(st.just("compact"), st.sampled_from(STREAMS)),
    st.tuples(st.just("reopen")),
)


def apply(store, op):
    """One observation per op; the two backends must produce equal ones."""
    kind = op[0]
    if kind == "put":
        _, stream, key, payload = op
        store.append(stream, key, payload)
        return ("put-ok", store.contains(stream, key))
    if kind == "get":
        _, stream, key = op
        return ("got", store.read(stream, key))
    if kind == "delete":
        _, stream, key = op
        return ("deleted", store.delete(stream, key))
    if kind == "list":
        _, stream = op
        return ("keys", store.list(stream))
    if kind == "stats":
        _, stream = op
        stats = store.stream_stats(stream)
        return ("stats", stats.entries, stats.superseded,
                stats.tombstones, stats.corrupt)
    if kind == "compact":
        _, stream = op
        report = store.compact(stream)
        return ("compacted", report.kept, report.dropped_superseded,
                report.dropped_tombstones, report.dropped_corrupt)
    assert kind == "reopen"
    return ("reopened",)


@pytest.mark.parametrize("backend", sorted(FACTORIES))
@settings(max_examples=60, deadline=None)
@given(script=st.lists(ops, max_size=40))
def test_sharded_store_matches_in_memory_spec(tmp_path_factory, backend,
                                              script):
    root = tmp_path_factory.mktemp("prop")
    factory = FACTORIES[backend]
    store = factory(root)
    spec = InMemoryStore(str(root / "spec"))
    for step, op in enumerate(script):
        if op[0] == "reopen":
            store = factory(root)
            spec = InMemoryStore(str(root / "spec"))
            continue
        observed = apply(store, op)
        expected = apply(spec, op)
        assert observed == expected, (
            f"step {step}: {op!r} -> {backend} {observed!r} "
            f"!= spec {expected!r}")
    # final state agrees stream by stream, key by key
    for stream in STREAMS:
        assert store.list(stream) == spec.list(stream)
        for key in spec.list(stream):
            assert store.read(stream, key) == spec.read(stream, key)


@pytest.mark.parametrize("backend", sorted(FACTORIES))
@settings(max_examples=20, deadline=None)
@given(puts=st.lists(st.tuples(st.sampled_from(KEYS), payloads),
                     max_size=30))
def test_compaction_is_observation_preserving(tmp_path_factory, backend,
                                              puts):
    """compact() never changes what readers see, only file shape."""
    root = tmp_path_factory.mktemp("prop-compact")
    factory = FACTORIES[backend]
    store = factory(root)
    for key, payload in puts:
        store.append("s", key, payload)
    before = {key: store.read("s", key) for key in store.list("s")}
    store.compact("s")
    assert {k: store.read("s", k) for k in store.list("s")} == before
    fresh = factory(root)
    assert {k: fresh.read("s", k) for k in fresh.list("s")} == before
    stats = fresh.stream_stats("s")
    assert stats.superseded == 0 and stats.corrupt == 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
