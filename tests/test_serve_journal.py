"""The durable write-ahead request journal behind ``repro serve``.

Contract: every admitted non-streaming request is journaled
(admitted → started → completed/failed) on the artifact store's
``"journal"`` stream under a content-hash idempotency signature.
Duplicates of a completed request short-circuit to the journaled,
byte-identical result; ``--recover`` replays unfinished records after a
daemon crash; volatile (memory) backends are refused unless the
operator explicitly serves with ``--no-journal``.
"""

import http.client
import json
from pathlib import Path

import pytest

from repro.api import OptimizationRequest, OptimizerSession
from repro.api.resilience import reset_resilience
from repro.evaluation.store import STORE_DIR, cache_dir
from repro.ir import parse_scop
from repro.serve import (JOURNAL_STREAM, JournalUnavailable,
                         RequestJournal, ServeConfig, ServeDaemon,
                         prune_finished, request_signature)
from repro.storage import InMemoryStore, open_store
from repro.testing.faults import FaultPlan, install_plan

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""

BODY = {"request": {"source": KERNEL}, "use_store": False}


def _post(addr, body, timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("POST", "/v1/optimize", json.dumps(body),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, resp.read().decode()
    finally:
        conn.close()


def _corrupt_stored_record(store, signature):
    """Rot ``signature``'s newest stored line: edit the journaled
    payload in place but keep the old crc, so the record still parses
    as JSON yet fails verification."""
    target = None
    for path in store.shard_paths(JOURNAL_STREAM):
        lines = path.read_text().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("key") == signature \
                    and not record.get("tombstone"):
                target = (path, lines, index, record)
    assert target is not None, "no stored line to corrupt"
    path, lines, index, record = target
    record["payload"]["attempts"] = 999  # tamper; crc left stale
    lines[index] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    store.refresh(JOURNAL_STREAM)


def _expected_bytes(include_events=True):
    request = OptimizationRequest.make(
        parse_scop(KERNEL), {"N": 1500}, {"N": 8},
        system="looprag", persona="deepseek")
    session = OptimizerSession(dataset_size=40)
    result = session.optimize(request, use_store=False)
    return json.dumps(result.to_json_dict(include_events=include_events),
                      indent=2, sort_keys=True)


@pytest.fixture()
def make_daemon(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RETRY_BASE", "0.001")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_resilience()
    install_plan(None)
    daemons = []

    def make(**overrides):
        options = dict(host="127.0.0.1", port=0, max_inflight=4,
                       queue_depth=4, per_client=8, drain_grace=10.0,
                       journal=True,
                       default_session={"dataset_size": 40})
        options.update(overrides)
        daemon = ServeDaemon(ServeConfig(**options))
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield make
    install_plan(None)
    for daemon in daemons:
        daemon.stop(timeout=30)
    reset_resilience()


# ----------------------------------------------------------------------
# the idempotency signature
# ----------------------------------------------------------------------
class TestRequestSignature:
    def test_delivery_options_do_not_change_the_signature(self):
        base = request_signature(BODY)
        assert request_signature(dict(BODY, deadline_s=5)) == base
        assert request_signature(dict(BODY, stream=True)) == base
        assert request_signature(dict(BODY, include_events=False)) == base
        # a missing session spec and an empty one are the same request
        assert request_signature(dict(BODY, session={})) == base

    def test_content_changes_the_signature(self):
        base = request_signature(BODY)
        other_kernel = {"request": {"source": KERNEL.replace(
            "2.0", "3.0")}, "use_store": False}
        assert request_signature(other_kernel) != base
        assert request_signature(
            dict(BODY, session={"dataset_size": 8})) != base
        assert request_signature(dict(BODY, use_store=True)) != base

    def test_signature_is_stable_across_key_order(self):
        shuffled = {"use_store": False, "request": {"source": KERNEL}}
        assert request_signature(shuffled) == request_signature(BODY)


# ----------------------------------------------------------------------
# the journal state machine (unit, over a real on-disk store)
# ----------------------------------------------------------------------
class TestRequestJournal:
    def test_lifecycle_admitted_started_completed(self, tmp_path):
        journal = RequestJournal(open_store(tmp_path / "store", "local"))
        signature = request_signature(BODY)

        journal.admitted(signature, BODY)
        record = journal.record(signature)
        assert record["status"] == "admitted"
        assert record["attempts"] == 1
        assert record["body"] == BODY
        assert journal.result(signature) is None

        journal.started(signature)
        assert journal.record(signature)["status"] == "started"
        assert [sig for sig, _ in journal.unfinished()] == [signature]

        journal.completed(signature, {"verdict": "ok"})
        assert journal.result(signature) == {"verdict": "ok"}
        assert journal.unfinished() == []
        assert journal.stats().entries >= 1
        assert journal.describe().startswith(f"{JOURNAL_STREAM}@")

    def test_failed_records_do_not_short_circuit(self, tmp_path):
        journal = RequestJournal(open_store(tmp_path / "store", "local"))
        signature = request_signature(BODY)
        journal.admitted(signature, BODY)
        journal.started(signature)
        journal.failed(signature, {"kind": "backend", "message": "x"})

        record = journal.record(signature)
        assert record["status"] == "failed"
        assert record["error"]["kind"] == "backend"
        assert journal.result(signature) is None  # must re-execute
        assert journal.unfinished() == []  # failure is a definite state

        # resubmission re-admits: attempts bumps, the error clears
        journal.admitted(signature, BODY)
        record = journal.record(signature)
        assert record["attempts"] == 2
        assert "error" not in record

    def test_volatile_backend_is_refused(self, tmp_path):
        with pytest.raises(JournalUnavailable) as excinfo:
            RequestJournal(InMemoryStore(tmp_path))
        assert "--no-journal" in str(excinfo.value)


# ----------------------------------------------------------------------
# the daemon end to end: dedup, recovery, refusal
# ----------------------------------------------------------------------
class TestDaemonJournal:
    def test_duplicates_short_circuit_byte_identically(self,
                                                       make_daemon):
        daemon = make_daemon()
        status, first = _post(daemon.address, BODY)
        assert status == 200
        assert first == _expected_bytes()
        assert daemon.metrics.get("journal_hits_total") == 0

        status, second = _post(daemon.address, BODY)
        assert status == 200
        assert second == first
        assert daemon.metrics.get("journal_hits_total") == 1

        # different delivery options are still the same computation
        status, third = _post(daemon.address, dict(BODY, deadline_s=90))
        assert third == first
        assert daemon.metrics.get("journal_hits_total") == 2

        # ... and event verbosity is applied to the journaled hit
        status, slim = _post(daemon.address,
                             dict(BODY, include_events=False))
        assert slim == _expected_bytes(include_events=False)
        assert daemon.metrics.get("journal_hits_total") == 3
        assert daemon.metrics.get("completed_total") == 4

    def test_failures_are_journaled_but_re_executed(self, make_daemon):
        daemon = make_daemon()
        body = dict(BODY, session={"llm_backend": "faulty"})
        signature = request_signature(body)
        install_plan(FaultPlan.parse("llm.generate:raise:always"))

        status, text = _post(daemon.address, body)
        assert status == 502
        record = daemon.journal.record(signature)
        assert record["status"] == "failed"
        assert record["attempts"] == 1

        install_plan(None)  # circumstances improve; content unchanged
        status, text = _post(daemon.address, body)
        assert status == 200
        record = daemon.journal.record(signature)
        assert record["status"] == "completed"
        assert record["attempts"] == 2
        assert daemon.metrics.get("journal_hits_total") == 0

    def test_recover_replays_unfinished_requests(self, make_daemon):
        # a daemon died mid-request: the journal holds a started record
        signature = request_signature(BODY)
        journal = RequestJournal(
            open_store(Path(cache_dir()) / STORE_DIR))
        journal.admitted(signature, BODY)
        journal.started(signature)

        daemon = make_daemon(recover=True)  # replays during boot
        assert daemon.metrics.get("journal_replayed_total") == 1
        record = daemon.journal.record(signature)
        assert record["status"] == "completed"

        # the original client resubmits: instant, byte-identical
        status, text = _post(daemon.address, BODY)
        assert status == 200
        assert text == _expected_bytes()
        assert daemon.metrics.get("journal_hits_total") == 1

    def test_recover_survives_an_unreplayable_record(self, make_daemon):
        signature = "deadbeef" * 8
        journal = RequestJournal(
            open_store(Path(cache_dir()) / STORE_DIR))
        journal.admitted(signature, {"request": {"source": "not a scop"}})

        daemon = make_daemon(recover=True)  # boots anyway
        assert daemon.metrics.get("journal_replay_failed_total") == 1
        record = daemon.journal.record(signature)
        assert record["status"] == "failed"
        assert record["error"]["kind"] == "replay_failed"

    def test_recover_refuses_a_corrupt_journal_record(self,
                                                      make_daemon):
        # the stored line rots on disk: valid JSON, stale crc
        signature = request_signature(BODY)
        store = open_store(Path(cache_dir()) / STORE_DIR)
        journal = RequestJournal(store)
        journal.admitted(signature, BODY)
        journal.started(signature)
        _corrupt_stored_record(store, signature)

        daemon = make_daemon(recover=True)  # boots; refuses the replay
        assert daemon.metrics.get("journal_corrupt_total") == 1
        assert daemon.metrics.get("journal_replayed_total") == 0
        record = daemon.journal.record(signature)
        assert record["status"] == "failed"
        assert record["error"]["kind"] == "corrupt_record"

        # resubmission re-runs it: failure is circumstance, not content
        status, text = _post(daemon.address, BODY)
        assert status == 200
        assert text == _expected_bytes()
        assert daemon.journal.record(signature)["status"] == "completed"

    def test_volatile_backend_refused_unless_no_journal(
            self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_STORE_BACKEND", "memory")
        with pytest.raises(JournalUnavailable):
            ServeDaemon(ServeConfig(port=0, journal=True))
        daemon = ServeDaemon(ServeConfig(port=0, journal=False))
        assert daemon.journal is None  # explicit opt-out works

        # the CLI surfaces the refusal as a clean exit, not a traceback
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "0"])
        assert "journal" in str(excinfo.value)

    def test_store_stats_reports_the_journal_stream(self, make_daemon,
                                                    capsys):
        daemon = make_daemon()
        status, _ = _post(daemon.address, BODY)
        assert status == 200

        from repro.cli import main
        assert main(["store", "stats", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert JOURNAL_STREAM in doc["streams"]
        assert doc["streams"][JOURNAL_STREAM]["entries"] == 1


# ----------------------------------------------------------------------
# retention: `repro store compact --journal-keep N`
# ----------------------------------------------------------------------
class TestJournalRetention:
    def _journal_with_history(self, root):
        store = open_store(root / "store", "local")
        journal = RequestJournal(store)
        for i in range(5):
            journal.admitted(f"sig-{i}", {"request": i})
            journal.completed(f"sig-{i}", {"verdict": i})
        journal.admitted("pending-a", {"request": "a"})
        journal.admitted("pending-b", {"request": "b"})
        journal.started("pending-b")
        journal.admitted("sig-bad", {"request": "bad"})
        journal.failed("sig-bad", {"kind": "backend", "message": "x"})
        return store, journal

    def test_prune_keeps_newest_finished_by_seq(self, tmp_path):
        store, journal = self._journal_with_history(tmp_path)
        report = prune_finished(store, keep=2)
        # 6 finished (5 completed + 1 failed): the oldest 4 go
        assert report == {"dropped": 4, "kept_finished": 2,
                          "unfinished": 2}
        for old in ("sig-0", "sig-1", "sig-2", "sig-3"):
            assert journal.record(old) is None
        assert journal.record("sig-4")["status"] == "completed"
        assert journal.record("sig-bad")["status"] == "failed"

    def test_prune_never_touches_unfinished(self, tmp_path):
        store, journal = self._journal_with_history(tmp_path)
        prune_finished(store, keep=0)  # drop every finished record
        assert sorted(sig for sig, _ in journal.unfinished()) \
            == ["pending-a", "pending-b"]
        assert journal.record("sig-4") is None
        report = prune_finished(store, keep=100)  # nothing left to drop
        assert report["dropped"] == 0

    def test_seq_resumes_across_journal_lifetimes(self, tmp_path):
        store, journal = self._journal_with_history(tmp_path)
        high = journal.record("sig-bad")["seq"]
        reborn = RequestJournal(open_store(tmp_path / "store", "local"))
        reborn.admitted("later", {"request": "later"})
        assert reborn.record("later")["seq"] == high + 1

    def test_cli_journal_keep_prunes_then_compacts(self, monkeypatch,
                                                   tmp_path, capsys):
        monkeypatch.delenv("REPRO_JOURNAL_KEEP", raising=False)
        self._journal_with_history(tmp_path)
        from repro.cli import main
        assert main(["store", "compact", "--cache-dir", str(tmp_path),
                     "--backend", "local", "--journal-keep", "2",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["journal_retention"]["dropped"] == 4
        assert doc["journal_retention"]["kept_finished"] == 2

        # the tombstoned bytes are really gone after the compaction
        fresh = open_store(tmp_path / "store", "local")
        stats = fresh.stream_stats(JOURNAL_STREAM)
        assert stats.entries == 4  # 2 finished survivors + 2 pending
        assert stats.tombstones == 0

        # the env knob is the fallback when the flag is absent
        monkeypatch.setenv("REPRO_JOURNAL_KEEP", "1")
        assert main(["store", "compact", "--cache-dir", str(tmp_path),
                     "--backend", "local", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["journal_retention"]["dropped"] == 1
        assert doc["journal_retention"]["kept_finished"] == 1


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------
class TestJournalConfig:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_JOURNAL", "0")
        monkeypatch.setenv("REPRO_WORKER_POOL", "3")
        monkeypatch.setenv("REPRO_WORKER_MEM_MB", "256")
        monkeypatch.setenv("REPRO_WORKER_HANG", "12.5")
        config = ServeConfig.from_env()
        assert config.journal is False
        assert config.workers == 3
        assert config.worker_memory_mb == 256
        assert config.worker_hang_timeout == 12.5
        assert ServeConfig.from_env(journal=True).journal is True
