"""Structural IR serialization: exact round-trips, including transforms."""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.serialize import program_from_json, program_to_json
from repro.synthesis.generator import ExampleSynthesizer
from repro.transforms import interchange, parallelize, skew, tile

_SETTINGS = dict(deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def roundtrip(program):
    # through actual JSON text, not just dicts — the corpus cache writes
    # files, so int/float/tuple fidelity must survive json.dumps/loads
    restored = program_from_json(
        json.loads(json.dumps(program_to_json(program))))
    assert restored == program
    assert restored.fingerprint() == program.fingerprint()
    return restored


class TestRoundTrip:
    def test_canonical_kernels(self, gemm, syrk, jacobi2d, stream, recur):
        for program in (gemm, syrk, jacobi2d, stream, recur):
            roundtrip(program)

    @settings(max_examples=25, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=400))
    def test_synthesized(self, index):
        roundtrip(ExampleSynthesizer(base_seed=7).synthesize(index))

    def test_transformed_programs(self, gemm):
        """Tiled/skewed/parallelized schedules — the shapes the pseudo-C
        round-trip loses — must survive structurally."""
        candidates = [
            tile(gemm, [1, 3], 8),
            skew(gemm, target_col=3, source_col=1, factor=2),
            interchange(gemm, 1, 3, stmts=["S2"]),
            parallelize(tile(gemm, [1], 4), 1),
        ]
        for candidate in candidates:
            restored = roundtrip(candidate)
            assert restored.parallel_dims == candidate.parallel_dims
            assert [str(s.schedule) for s in restored.statements] == \
                [str(s.schedule) for s in candidate.statements]

    def test_provenance_and_tags_survive(self, stream):
        tagged = stream.with_provenance("note-a", "note-b").with_tags(
            "dummy-call")
        restored = roundtrip(tagged)
        assert restored.provenance == tagged.provenance
        assert restored.tags == tagged.tags
