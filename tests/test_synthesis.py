"""Parameter-driven synthesis and COLA-Gen tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dependences, extract_properties
from repro.ir import validate_program
from repro.runtime import run
from repro.synthesis import (ColaGenSynthesizer, ExampleSynthesizer,
                             LoopParameters, build_dataset,
                             transformation_kinds)


class TestParameters:
    def test_sample_within_ranges(self):
        import random
        rng = random.Random(0)
        for _ in range(100):
            p = LoopParameters.sample(rng)
            assert p.iterator_bound in (0.2, 0.4, 0.6)
            assert 2 <= p.loop_depth <= 4
            assert 1 <= p.statement_index <= 3
            assert 1 <= p.n_statements <= 6
            assert 1 <= p.dep_distance <= 2
            assert 1 <= p.read_dep <= 3
            assert p.write_dep in (0.2, 0.4, 0.6)
            assert 1 <= p.array_list <= 3
            assert p.read_array in (1, 3, 5)
            assert 1 <= p.array_indexes <= 2

    def test_colagen_defaults(self):
        import random
        p = LoopParameters.colagen_defaults(random.Random(0))
        assert p.loop_depth == 2
        assert p.n_statements == 1
        assert p.read_array == 1


class TestGenerator:
    def test_deterministic(self):
        synth = ExampleSynthesizer(base_seed=5)
        a = synth.synthesize(3)
        b = ExampleSynthesizer(base_seed=5).synthesize(3)
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        a = ExampleSynthesizer(base_seed=1).synthesize(3)
        b = ExampleSynthesizer(base_seed=2).synthesize(3)
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("index", range(12))
    def test_generated_programs_are_legal(self, index):
        program = ExampleSynthesizer(base_seed=9).synthesize(index)
        validate_program(program)
        result = run(program, {"N": 9}, budget=100_000)
        assert result.instances > 0

    def test_generated_programs_have_outputs(self):
        program = ExampleSynthesizer(base_seed=9).synthesize(1)
        assert program.outputs

    def test_bounds_leave_safety_margin(self):
        program = ExampleSynthesizer(base_seed=9).synthesize(2)
        for stmt in program.statements:
            for spec in stmt.domain.iters:
                assert all(lo.const >= 2 or lo.variables()
                           for lo in spec.lowers)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_any_index_yields_runnable_program(self, index):
        synth = ExampleSynthesizer(base_seed=123)
        try:
            program = synth.synthesize(index)
        except Exception:
            return  # a failed sample is allowed; a crash-on-run is not
        run(program, {"N": 9}, budget=100_000)


class TestColaGen:
    def test_single_statement_perfect(self):
        program = ColaGenSynthesizer(base_seed=0).synthesize(1)
        assert len(program.statements) == 1
        assert program.max_depth == 2

    def test_always_loop_carried(self):
        for idx in range(10):
            program = ColaGenSynthesizer(base_seed=0).synthesize(idx)
            deps = dependences(program)
            assert any(d.loop_carried for d in deps)

    def test_runs(self):
        program = ColaGenSynthesizer(base_seed=0).synthesize(4)
        run(program, {"N": 9})


class TestDataset:
    def test_build_small(self):
        ds = build_dataset(size=12, seed=3)
        assert len(ds) == 12
        for entry in ds:
            assert entry.example_text
            assert entry.optimized_text
            assert entry.recipe is not None

    def test_kinds_present(self):
        ds = build_dataset(size=60, seed=3)
        kinds = transformation_kinds(ds)
        assert kinds.get("tiling", 0) > 0
        assert kinds.get("fusion", 0) > 0

    def test_optimized_versions_equivalent(self):
        import numpy as np
        ds = build_dataset(size=8, seed=3)
        for entry in ds:
            a = run(entry.example, {"N": 9})
            b = run(entry.optimized, {"N": 9})
            for name in a.outputs:
                assert np.allclose(a.outputs[name], b.outputs[name])

    def test_properties_attached(self):
        ds = build_dataset(size=5, seed=3)
        for entry in ds:
            assert entry.properties.n_statements >= 1

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError):
            build_dataset(size=3, generator="yarpgen")
