"""Interpreter and data-initialisation tests."""

import numpy as np
import pytest

from repro.ir import parse_scop
from repro.runtime import (BranchCoverage, RuntimeExecutionError, allocate,
                           checksum, run)


class TestReferenceSemantics:
    def test_gemm_matches_numpy(self, gemm):
        params = {"NI": 7, "NJ": 6, "NK": 5}
        st = allocate(gemm, params)
        expected = st["C"] * 1.2 + 1.5 * st["A"] @ st["B"]
        result = run(gemm, params)
        assert np.allclose(result.outputs["C"], expected)

    def test_syrk_matches_numpy(self, syrk):
        params = {"N": 8, "M": 6}
        st = allocate(syrk, params)
        C, A = st["C"].copy(), st["A"]
        for i in range(8):
            for j in range(i + 1):
                C[i, j] *= 1.2
                for k in range(6):
                    C[i, j] += 1.5 * A[i, k] * A[j, k]
        assert np.allclose(run(syrk, params).outputs["C"], C)

    def test_jacobi_two_sweeps(self, jacobi2d):
        params = {"T": 2, "N": 8}
        st = allocate(jacobi2d, params)
        A, B = st["A"].copy(), st["B"].copy()
        for _t in range(2):
            for i in range(1, 7):
                for j in range(1, 7):
                    B[i, j] = 0.2 * (A[i, j] + A[i, j - 1] + A[i, 1 + j]
                                     + A[1 + i, j] + A[i - 1, j])
            for i in range(1, 7):
                for j in range(1, 7):
                    A[i, j] = 0.2 * (B[i, j] + B[i, j - 1] + B[i, 1 + j]
                                     + B[1 + i, j] + B[i - 1, j])
        out = run(jacobi2d, params).outputs
        assert np.allclose(out["A"], A)
        assert np.allclose(out["B"], B)

    def test_sequential_recurrence(self, recur):
        out = run(recur, {"LEN": 10}).outputs["X"]
        st = allocate(recur, {"LEN": 10})
        X = st["X"].copy()
        for i in range(1, 10):
            X[i] = X[i - 1] + 1.0
        assert np.allclose(out, X)

    def test_instance_count(self, gemm):
        result = run(gemm, {"NI": 4, "NJ": 3, "NK": 2})
        assert result.instances == 4 * 3 + 4 * 2 * 3


class TestDeterminism:
    def test_same_variant_same_checksum(self, gemm):
        params = {"NI": 5, "NJ": 5, "NK": 5}
        a = run(gemm, params, variant=3)
        b = run(gemm, params, variant=3)
        assert a.checksum == b.checksum

    def test_different_variants_differ(self, gemm):
        params = {"NI": 5, "NJ": 5, "NK": 5}
        a = run(gemm, params, variant=0)
        b = run(gemm, params, variant=1)
        assert a.checksum != b.checksum


class TestErrors:
    def test_out_of_bounds_raises(self):
        p = parse_scop("""
        scop oob(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            A[i + 1] = 1.0;
        }
        """)
        with pytest.raises(RuntimeExecutionError):
            run(p, {"N": 4})

    def test_negative_index_raises(self):
        p = parse_scop("""
        scop neg(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            A[i - 1] = 1.0;
        }
        """)
        with pytest.raises(RuntimeExecutionError):
            run(p, {"N": 4})

    def test_budget(self, gemm):
        from repro.runtime import BudgetExceededError
        with pytest.raises(BudgetExceededError):
            run(gemm, {"NI": 50, "NJ": 50, "NK": 50}, budget=100)


class TestCoverage:
    def test_guard_coverage_both_ways(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 2)
              A[i] = 1.0;
        }
        """)
        cov = BranchCoverage()
        run(p, {"N": 5}, coverage=cov)
        assert cov.ratio() == 1.0

    def test_guard_never_true_incomplete(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 100)
              A[i] = 1.0;
        }
        """)
        cov = BranchCoverage()
        run(p, {"N": 5}, coverage=cov)
        assert cov.ratio() < 1.0


class TestCoverageRegistration:
    def test_register_program_idempotent(self, gemm):
        cov = BranchCoverage()
        cov.register_program(gemm)
        first = set(cov.possible)
        cov.register_program(gemm)
        assert cov.possible == first
        assert len(cov._registered) == 1

    def test_repeated_execute_registers_once(self, gemm):
        cov = BranchCoverage()
        params = {"NI": 3, "NJ": 3, "NK": 3}
        for _ in range(3):
            run(gemm, params, coverage=cov)
        assert len(cov._registered) == 1
        assert cov.ratio() == 1.0

    def test_distinct_programs_both_register(self, gemm, syrk):
        cov = BranchCoverage()
        cov.register_program(gemm)
        cov.register_program(syrk)
        assert len(cov._registered) == 2


class TestInitKinds:
    @pytest.mark.parametrize("kind", ["poly", "zeros", "ones", "ramp",
                                      "alt", "identity"])
    def test_kinds_allocate(self, kind):
        from repro.ir.program import ArrayDecl
        from repro.ir import aff
        from repro.runtime import init_array
        decl = ArrayDecl("A", (aff(4), aff(5)), kind)
        arr = init_array(decl, (4, 5))
        assert arr.shape == (4, 5)
        assert np.isfinite(arr).all()

    def test_checksum_order_stable(self, gemm):
        st = allocate(gemm, {"NI": 4, "NJ": 4, "NK": 4})
        c1 = checksum(st, ("C", "A"))
        c2 = checksum(st, ("A", "C"))
        assert c1 == c2
