"""`repro perf` — the execution-engine micro-benchmark subcommand."""

import json
import os

import pytest

from repro.cli import main
from repro.runtime import engine_override
from repro.runtime import native as native_mod

needs_toolchain = pytest.mark.skipif(
    native_mod.find_toolchain() is None,
    reason="no C toolchain available")


def test_perf_json_report(tmp_path, capsys):
    out = tmp_path / "BENCH_interpreter.json"
    code = main(["perf", "--suite", "polybench", "--limit", "2",
                 "--repeat", "1", "--param", "12", "--json", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["suite"] == "polybench"
    assert report["bit_identical"] is True
    assert len(report["kernels"]) == 2
    for row in report["kernels"]:
        assert row["identical"] is True
        assert row["instances"] > 0
        assert row["reference_ms"] > 0
        assert row["vectorized_ms"] > 0
    assert report["aggregate_speedup"] > 0
    table = capsys.readouterr().out
    assert "aggregate" in table


def test_perf_restores_engine_env(tmp_path):
    with engine_override("reference"):
        main(["perf", "--suite", "polybench", "--limit", "1",
              "--repeat", "1", "--param", "8",
              "--json", str(tmp_path / "r.json")])
        assert os.environ["REPRO_ENGINE"] == "reference"


def test_perf_analysis_json_report(tmp_path, capsys):
    out = tmp_path / "BENCH_analysis.json"
    code = main(["perf", "--target", "analysis", "--suite", "polybench",
                 "--limit", "2", "--repeat", "1", "--json", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["suite"] == "polybench"
    assert report["target"] == "analysis"
    assert report["bit_identical"] is True
    assert len(report["kernels"]) == 2
    for row in report["kernels"]:
        assert row["identical"] is True
        assert row["deps"] > 0
        assert row["queries"] > 0
        assert row["reference_dep_ms"] > 0
        assert row["vectorized_dep_ms"] > 0
        assert row["reference_legality_ms"] > 0
        assert row["vectorized_legality_ms"] > 0
    assert report["aggregate_speedup"] > 0
    table = capsys.readouterr().out
    assert "aggregate" in table


def test_perf_analysis_restores_analysis_env(tmp_path):
    from repro.analysis import analysis_override

    with analysis_override("reference"):
        main(["perf", "--target", "analysis", "--suite", "polybench",
              "--limit", "1", "--repeat", "1",
              "--json", str(tmp_path / "a.json")])
        assert os.environ["REPRO_ANALYSIS"] == "reference"


@needs_toolchain
def test_perf_kernels_json_report(tmp_path, capsys):
    out = tmp_path / "BENCH_kernels.json"
    code = main(["perf", "--target", "kernels", "--suite", "polybench",
                 "--limit", "2", "--repeat", "1", "--param", "12",
                 "--json", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["suite"] == "polybench"
    assert report["target"] == "kernels"
    assert report["bit_identical"] is True
    assert report["toolchain"]["available"] is True
    assert len(report["kernels"]) == 2
    for row in report["kernels"]:
        assert row["identical"] is True
        assert row["instances"] > 0
        assert row["reference_ms"] > 0
        assert row["vectorized_ms"] > 0
        assert row["native_ms"] > 0
    assert report["aggregate_speedup"] > 0
    assert report["aggregate_vs_reference"] > 0
    table = capsys.readouterr().out
    assert "toolchain" in table and "aggregate" in table


def test_perf_kernels_degrades_without_toolchain(tmp_path, monkeypatch):
    # with the toolchain broken the native engine silently becomes the
    # vectorized one, so parity still holds and the exit code stays 0
    monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
    native_mod._TOOLCHAIN_CACHE.pop("/nonexistent/cc", None)
    native_mod._WARNED.discard("/nonexistent/cc")
    out = tmp_path / "BENCH_kernels.json"
    code = main(["perf", "--target", "kernels", "--suite", "polybench",
                 "--limit", "1", "--repeat", "1", "--param", "8",
                 "--json", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["bit_identical"] is True
    assert report["toolchain"]["available"] is False
