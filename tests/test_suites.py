"""Benchmark-suite integrity tests."""

import numpy as np
import pytest

from repro.analysis import dependences
from repro.ir import validate_program
from repro.runtime import run
from repro.suites import lore, polybench, tsvc


@pytest.fixture(scope="module")
def all_suites():
    return [polybench(), tsvc(), lore()]


class TestCounts:
    def test_paper_counts(self, all_suites):
        sizes = {s.name: len(s) for s in all_suites}
        assert sizes == {"polybench": 30, "tsvc": 84, "lore": 49}

    def test_unique_names(self, all_suites):
        for suite in all_suites:
            names = suite.names()
            assert len(names) == len(set(names))


class TestPolybench:
    def test_every_kernel_runs(self):
        for bench in polybench():
            result = run(bench.program, bench.test, budget=300_000)
            assert result.instances > 0
            for arr in result.outputs.values():
                assert np.isfinite(arr).all()

    def test_every_kernel_validates(self):
        for bench in polybench():
            validate_program(bench.program)

    def test_known_structures(self):
        suite = polybench()
        assert suite.get("gemm").program.max_depth == 3
        assert suite.get("doitgen").program.max_depth == 4
        assert len(suite.get("3mm").program.statements) == 6
        assert suite.get("seidel-2d").program.max_depth == 3

    def test_syrk_matches_paper_schedules(self):
        syrk = polybench().get("syrk").program
        assert str(syrk.statements[0].schedule) == "[0, i, 0, j, 0]"
        assert str(syrk.statements[1].schedule) == "[0, i, 1, k, 0, j, 0]"

    def test_stencils_have_cross_statement_deps(self):
        for name in ("jacobi-2d", "jacobi-1d", "heat-3d"):
            deps = dependences(polybench().get(name).program)
            cross = [d for d in deps if d.source != d.target]
            assert cross


class TestTsvc:
    def test_every_kernel_runs(self):
        for bench in tsvc():
            result = run(bench.program, bench.test, budget=300_000)
            assert result.instances > 0

    def test_dummy_call_tags(self):
        for bench in tsvc():
            assert "dummy-call" in bench.program.tags
            assert "pure-annotated" in bench.program.tags

    def test_s233_shape(self):
        s233 = tsvc().get("s233").program
        assert len(s233.statements) == 2
        deps = dependences(s233)
        carried = {d.source for d in deps if d.loop_carried}
        assert carried == {"S1", "S2"}

    def test_reductions_present(self):
        s311 = tsvc().get("s311").program
        assert s311.statements[0].body.op == "+="

    def test_recurrences_not_parallel(self):
        from repro.analysis import is_parallel_dim
        s321 = tsvc().get("s321").program
        assert not is_parallel_dim(s321, dependences(s321), 1)


class TestLore:
    def test_every_kernel_runs(self):
        for bench in lore():
            result = run(bench.program, bench.test, budget=300_000)
            assert result.instances > 0

    def test_outputs_are_written_arrays(self):
        for bench in lore():
            written = {s.write().array for s in bench.program.statements}
            assert set(bench.program.outputs) <= written | {"u"}

    def test_mix_of_depths(self):
        depths = {b.program.max_depth for b in lore()}
        assert {1, 2, 3} <= depths


class TestSubset:
    def test_subset_filters(self):
        suite = polybench().subset(["gemm", "syrk"])
        assert suite.names() == ["gemm", "syrk"]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            polybench().get("nonexistent")
