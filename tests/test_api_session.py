"""Service-API tests: session/shim equivalence, registries, events.

The acceptance bar for the API redesign: ``optimize_many`` over a
4-kernel suite is bit-identical to per-request serial
``LoopRAG.optimize``, and the deprecated shims reproduce the old
wiring's outputs exactly (the old wiring being a hand-built
``FeedbackPipeline``, which is unchanged).
"""

import warnings

import pytest

from repro.api import (LLM_BACKENDS, OptimizationRequest,
                       OptimizationResult, OptimizerSession, Registry,
                       UnknownComponentError)
from repro.api.events import EventBus, EventLog, SessionEvent
from repro.compilers import GCC
from repro.llm import DEEPSEEK_V3, GPT_4O, SimulatedLLM
from repro.pipeline import (BaseLLMOptimizer, FeedbackPipeline, LoopRAG)
from repro.pipeline.generation import (BASELINE_TIME_LIMIT,
                                       LOOPRAG_TIME_LIMIT)
from repro.retrieval import Retriever
from repro.suites import SUITES
from repro.synthesis import build_dataset
from repro.transforms import TransformError, TransformStep

KERNELS = ("gemm", "syrk", "mvt", "atax")


@pytest.fixture(scope="module")
def retriever():
    return Retriever(build_dataset(size=60, seed=31))


@pytest.fixture(scope="module")
def benches():
    suite = SUITES["polybench"]()
    return [suite.get(name) for name in KERNELS]


def _result_tuple(result: OptimizationResult):
    return (result.passed, result.speedup, result.baseline_seconds,
            result.best_seconds, result.recipe, result.best_code,
            result.stage_pass, result.stage_speedup)


class TestOptimizeManyEquivalence:
    def test_batch_matches_serial_shim(self, retriever, benches):
        """optimize_many == per-request serial LoopRAG.optimize,
        bit for bit, over a 4-kernel suite."""
        session = OptimizerSession(retriever=retriever, seed=0)
        requests = [OptimizationRequest.make(
            bench.program, bench.perf, bench.test, persona="deepseek")
            for bench in benches]
        batch = session.optimize_many(requests, jobs=2)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = LoopRAG(retriever.dataset, DEEPSEEK_V3, seed=0,
                           retriever=retriever)
        for bench, result in zip(benches, batch):
            outcome = shim.optimize(bench.program, bench.perf, bench.test)
            assert result.passed == outcome.passed
            assert result.speedup == outcome.speedup
            assert result.stage_pass == outcome.result.stage_pass
            assert result.stage_speedup == outcome.result.stage_speedup
            if outcome.best_program is None:
                assert result.best_program is None
            else:
                assert result.best_program == outcome.best_program
                assert result.recipe == \
                    outcome.best_recipe.describe()

    def test_parallel_matches_serial(self, retriever, benches):
        requests = [OptimizationRequest.make(
            bench.program, bench.perf, bench.test, persona="gpt4")
            for bench in benches]
        serial = OptimizerSession(retriever=retriever, seed=0) \
            .optimize_many(requests, jobs=1)
        parallel = OptimizerSession(retriever=retriever, seed=0) \
            .optimize_many(requests, jobs=4)
        for a, b in zip(serial, parallel):
            assert _result_tuple(a) == _result_tuple(b)
            assert a.events == b.events

    def test_thread_pool_matches_fork(self, retriever, benches):
        requests = [OptimizationRequest.make(
            bench.program, bench.perf, bench.test)
            for bench in benches[:2]]
        forked = OptimizerSession(retriever=retriever, seed=0) \
            .optimize_many(requests, jobs=2, pool="auto")
        threaded = OptimizerSession(retriever=retriever, seed=0) \
            .optimize_many(requests, jobs=2, pool="thread")
        for a, b in zip(forked, threaded):
            assert _result_tuple(a) == _result_tuple(b)


class TestShimEquivalence:
    """The deprecated facades against the unchanged pipeline core."""

    def test_looprag_shim_matches_pipeline(self, retriever, benches):
        bench = benches[0]
        reference = FeedbackPipeline(
            retriever=retriever,
            llm_factory=lambda: SimulatedLLM(DEEPSEEK_V3, 7),
            base_compiler=GCC,
            time_limit=LOOPRAG_TIME_LIMIT,
            use_feedback=True,
            seed=7).run(bench.program, bench.perf, bench.test)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = LoopRAG(retriever.dataset, DEEPSEEK_V3, seed=7,
                           retriever=retriever)
        outcome = shim.optimize(bench.program, bench.perf, bench.test)
        assert outcome.result == reference

    def test_basellm_shim_matches_pipeline(self, benches):
        bench = benches[1]
        reference = FeedbackPipeline(
            retriever=None,
            llm_factory=lambda: SimulatedLLM(GPT_4O, 3),
            base_compiler=GCC,
            time_limit=BASELINE_TIME_LIMIT,
            use_feedback=False,
            seed=3).run(bench.program, bench.perf, bench.test)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = BaseLLMOptimizer(GPT_4O, seed=3)
        outcome = shim.optimize(bench.program, bench.perf, bench.test)
        assert outcome.result == reference

    def test_shims_warn(self, retriever):
        with pytest.warns(DeprecationWarning):
            LoopRAG(retriever.dataset, DEEPSEEK_V3, retriever=retriever)
        with pytest.warns(DeprecationWarning):
            BaseLLMOptimizer(GPT_4O)

    def test_run_compiler_shim_matches_plans(self):
        import os

        from repro.evaluation.harness import (compiler_plan, results_for,
                                              run_compiler)

        os.environ["REPRO_SUITE_LIMIT"] = "3"
        try:
            direct = results_for(compiler_plan("polybench", "pluto"))
            with pytest.warns(DeprecationWarning):
                shim = run_compiler("polybench", "pluto")
            assert shim == direct
        finally:
            os.environ.pop("REPRO_SUITE_LIMIT", None)


class TestRequestStore:
    def test_roundtrip_is_bit_identical(self, benches, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        bench = benches[0]
        request = OptimizationRequest.make(bench.program, bench.perf,
                                           bench.test)
        cold = OptimizerSession(dataset_size=40, seed=0)
        live = cold.optimize(request)
        assert not live.from_cache
        warm = OptimizerSession(dataset_size=40, seed=0)
        cached = warm.optimize(request)
        assert cached.from_cache
        assert _result_tuple(cached) == _result_tuple(live)
        assert cached.events == live.events
        assert cached.best_program == live.best_program
        # byte-stable JSON document, warm or cold
        assert cached.to_json_dict() == live.to_json_dict()

    def test_injected_corpus_skips_store(self, retriever, benches,
                                         tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = OptimizerSession(retriever=retriever)
        bench = benches[2]
        request = OptimizationRequest.make(bench.program, bench.perf,
                                           bench.test)
        first = session.optimize(request)
        second = session.optimize(request)
        assert not first.from_cache and not second.from_cache
        assert _result_tuple(first) == _result_tuple(second)


class TestEvents:
    def test_event_stream_is_deterministic(self, retriever, benches):
        bench = benches[0]
        request = OptimizationRequest.make(bench.program, bench.perf,
                                           bench.test)
        a = OptimizerSession(retriever=retriever).optimize(request)
        b = OptimizerSession(retriever=retriever).optimize(request)
        assert a.events == b.events
        kinds = {e.kind for e in a.events}
        assert {"request", "retrieval_done", "round_start",
                "candidate_generated", "candidate_compiled",
                "candidate_tested", "stage_done", "selected"} <= kinds
        # local sequence numbers, gapless
        assert [e.seq for e in a.events] == list(range(len(a.events)))

    def test_bus_subscription(self, retriever, benches):
        bench = benches[0]
        session = OptimizerSession(retriever=retriever)
        seen = []
        unsubscribe = session.events.subscribe(seen.append)
        result = session.optimize(OptimizationRequest.make(
            bench.program, bench.perf, bench.test))
        unsubscribe()
        assert tuple(seen) == result.events
        session.optimize(OptimizationRequest.make(
            bench.program, bench.perf, bench.test))
        assert len(seen) == len(result.events)  # unsubscribed

    def test_fork_pool_republishes_events_to_parent(self, retriever,
                                                    benches):
        """Process-pool workers emit inside their fork; the parent
        re-publishes each result's log so subscribers still see every
        event."""
        from repro.evaluation.parallel import resolve_pool

        if resolve_pool("auto") != "process":
            pytest.skip("platform has no fork pool")
        session = OptimizerSession(retriever=retriever)
        seen = []
        session.events.subscribe(seen.append)
        requests = [OptimizationRequest.make(
            bench.program, bench.perf, bench.test)
            for bench in benches[:2]]
        results = session.optimize_many(requests, jobs=2, pool="process")
        expected = [e for r in results for e in r.events]
        assert sorted(e.to_dict()["kind"] for e in seen) == \
            sorted(e.to_dict()["kind"] for e in expected)
        assert len(seen) == len(expected)

    def test_concurrent_batches_on_one_session(self, retriever,
                                               benches):
        """Several optimize_many calls on ONE session may overlap; no
        batch may unregister another's worker state mid-flight."""
        import threading

        session = OptimizerSession(retriever=retriever)
        requests = [OptimizationRequest.make(
            bench.program, bench.perf, bench.test)
            for bench in benches[:2]]
        outcomes = []
        errors = []

        def run_batch():
            try:
                outcomes.append(session.optimize_many(
                    requests, jobs=2, pool="thread"))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run_batch)
                   for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outcomes) == 3
        first = [_result_tuple(r) for r in outcomes[0]]
        assert all([_result_tuple(r) for r in batch] == first
                   for batch in outcomes)

    def test_raising_subscriber_is_dropped(self):
        bus = EventBus()

        def bad(_event):
            raise RuntimeError("boom")
        bus.subscribe(bad)
        log = EventLog(forward=bus.publish)
        log.emit("request", target="x")
        log.emit("selected", passed=True)
        assert bus.subscriber_count == 0
        assert len(log) == 2

    def test_wall_time_excluded_from_identity(self):
        a = SessionEvent.make(0, "request", {"target": "k"}, wall=1.0)
        b = SessionEvent.make(0, "request", {"target": "k"}, wall=2.0)
        assert a == b
        assert "wall" not in a.to_dict()
        assert SessionEvent.from_dict(a.to_dict()) == a

    def test_event_log_is_a_bounded_ring(self):
        log = EventLog(limit=3)
        for i in range(5):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        retained = log.events()
        # seq keeps counting, so truncation is recognizable
        assert [e.seq for e in retained] == [2, 3, 4]
        assert retained[0].seq > 0

    def test_event_log_forwards_even_what_the_ring_drops(self):
        seen = []
        log = EventLog(forward=seen.append, limit=1)
        log.emit("a")
        log.emit("b")
        assert [e.kind for e in seen] == ["a", "b"]  # live saw all
        assert [e.kind for e in log.events()] == ["b"]
        assert log.dropped == 1

    def test_event_log_limit_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_LOG_LIMIT", "2")
        log = EventLog()
        for i in range(4):
            log.emit("tick", i=i)
        assert len(log) == 2
        assert log.dropped == 2
        # limit <= 0 = unbounded (the pre-ring behavior)
        monkeypatch.setenv("REPRO_EVENT_LOG_LIMIT", "0")
        unbounded = EventLog()
        for i in range(4):
            unbounded.emit("tick", i=i)
        assert len(unbounded) == 4
        assert unbounded.dropped == 0


class TestRegistries:
    def test_unknown_llm_backend_lists_names(self):
        with pytest.raises(UnknownComponentError,
                           match=r"unknown LLM backend 'gpt-live'.*"
                                 r"registered: simulated"):
            OptimizerSession(llm_backend="gpt-live")

    def test_unknown_retrieval_method_lists_names(self):
        with pytest.raises(UnknownComponentError,
                           match=r"loop-aware, bm25, weighted"):
            OptimizerSession(retrieval_method="dense")

    def test_unknown_base_compiler_lists_names(self):
        with pytest.raises(UnknownComponentError,
                           match=r"unknown base compiler 'tcc'"):
            OptimizerSession(base_compiler="tcc")

    def test_unknown_optimizer_lists_names(self, benches):
        session = OptimizerSession(use_store=False)
        request = OptimizationRequest.make(
            benches[0].program, benches[0].perf, system="compiler",
            optimizer="llvm-bolt")
        with pytest.raises(UnknownComponentError,
                           match=r"pluto, polly, graphite, perspective, "
                                 r"icx"):
            session.optimize(request)

    def test_unknown_persona_lists_names(self, retriever, benches):
        session = OptimizerSession(retriever=retriever)
        request = OptimizationRequest.make(
            benches[0].program, benches[0].perf, benches[0].test,
            persona="claude")
        with pytest.raises(UnknownComponentError,
                           match=r"deepseek, gpt4, deepseek-v2.5"):
            session.optimize(request)

    def test_unknown_request_system(self, benches):
        with pytest.raises(UnknownComponentError,
                           match=r"looprag, basellm, compiler"):
            OptimizationRequest.make(benches[0].program, {}, {},
                                     system="genetic")

    def test_unknown_transform_kind_lists_names(self):
        with pytest.raises(TransformError, match=r"registered: tiling"):
            TransformStep.make("loop-unroll")

    def test_registry_protocol(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2
        assert reg.names() == ("a",)
        assert "a" in reg and len(reg) == 1
        reg.unregister("a")
        assert reg.maybe("a") is None

    def test_pluggable_optimizer_with_class_base(self, benches):
        """A plugin optimizer declares its base compiler on the class
        and is then fully servable; one without any mapping fails with
        an actionable message."""
        from repro.api import OPTIMIZER_REGISTRY
        from repro.compilers.base import Optimizer
        from repro.transforms import TransformRecipe

        class NoOp(Optimizer):
            name = "noop"
            base_compiler = "gcc"

            def optimize(self, program, params):
                return self._done(program, TransformRecipe())

        class Orphan(NoOp):
            name = "orphan"
            base_compiler = None

        OPTIMIZER_REGISTRY.register("noop", NoOp)
        OPTIMIZER_REGISTRY.register("orphan", Orphan)
        try:
            session = OptimizerSession(use_store=False)
            result = session.optimize(OptimizationRequest.make(
                benches[0].program, benches[0].perf, system="compiler",
                optimizer="noop"))
            assert result.passed and result.speedup == 1.0
            with pytest.raises(ValueError,
                               match="declares no base compiler"):
                session.optimize(OptimizationRequest.make(
                    benches[0].program, benches[0].perf,
                    system="compiler", optimizer="orphan"))
        finally:
            OPTIMIZER_REGISTRY.unregister("noop")
            OPTIMIZER_REGISTRY.unregister("orphan")

    def test_pluggable_llm_backend(self, retriever, benches):
        """A backend registered under a new name is fully usable."""
        calls = []

        def tracing_backend(persona, seed):
            calls.append((persona.name, seed))
            return SimulatedLLM(persona, seed)

        LLM_BACKENDS.register("tracing", tracing_backend)
        try:
            bench = benches[0]
            request = OptimizationRequest.make(bench.program, bench.perf,
                                               bench.test)
            traced = OptimizerSession(
                retriever=retriever, llm_backend="tracing") \
                .optimize(request)
            stock = OptimizerSession(retriever=retriever) \
                .optimize(request)
            assert calls == [("deepseek", 0)]
            assert _result_tuple(traced) == _result_tuple(stock)
        finally:
            LLM_BACKENDS.unregister("tracing")
