"""Printer details: interval arithmetic, ordering, transformed nests."""

import pytest

from repro.codegen import scop_body_to_c, to_c
from repro.ir import parse_scop
from repro.transforms import distribute, fuse, interchange, skew, tile


class TestIntervalArithmetic:
    def test_skewed_loop_bounds_are_sums(self, jacobi2d):
        s = skew(jacobi2d, 3, 1, 1)
        text = scop_body_to_c(s)
        # the synthetic t-loop for i+t ranges over both extents
        assert "t1" in text
        assert "T-1" in text and "N-2" in text

    def test_negative_coefficient_flips_bounds(self):
        p = parse_scop("""
        scop neg(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            A[i] = 1.0;
        }
        """)
        from repro.ir.schedule import LoopDim
        from repro.ir import var
        stmt = p.statements[0]
        flipped = p.with_statement(
            "S1", stmt.with_schedule(
                stmt.schedule.with_dim(1, LoopDim(var("i") * -1))))
        text = scop_body_to_c(flipped)
        assert "-1*(N-1)" in text  # lower bound becomes -upper


class TestTextualOrder:
    def test_out_of_list_order_statements_sorted(self):
        # build a program whose statement list order disagrees with the
        # schedule order and check the printer emits schedule order
        p = parse_scop("""
        scop two(N) {
          array A[N] output;
          array B[N] output;
          for (i = 0; i < N; i++)
            A[i] = 1.0;
          for (i = 0; i < N; i++)
            B[i] = 2.0;
        }
        """)
        reordered = p.with_statements([p.statements[1], p.statements[0]])
        text = scop_body_to_c(reordered)
        assert text.index("A[i] = 1") < text.index("B[i] = 2")

    def test_distributed_order(self, gemm):
        d = distribute(gemm, 0)
        text = scop_body_to_c(d)
        assert text.index("// S1") < text.index("// S2")


class TestTransformedNests:
    def test_fused_loop_shares_header(self, gemm):
        aligned = interchange(gemm, 3, 5, stmts=["S2"])
        fused = fuse(aligned, 2)
        text = scop_body_to_c(fused)
        # exactly one i-loop header and one shared j-loop header
        assert text.count("for (i = 0") == 1
        assert text.count("for (j = 0") == 1

    def test_nested_tiles_print_point_constraints(self, gemm):
        t = tile(gemm, [1], 16)
        text = scop_body_to_c(t)
        assert "max(0, 16*t1)" in text
        assert "min(NI-1, 16*t1+15)" in text

    def test_full_unit_contains_declarations(self, syrk):
        text = to_c(syrk)
        assert text.splitlines()[0] == "// program syrk"
        assert "double C[N][N];  // output" in text
        assert "#pragma scop" in text
