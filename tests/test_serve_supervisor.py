"""Supervised worker-process isolation for ``repro serve``.

The contract under test: with ``workers > 0`` every request runs in a
forked, rlimited worker process, results are byte-identical to the
in-process path, and *no* worker death — SIGKILL, hard exit, OOM, hang
— ever takes the daemon down.  A crash answers ``500`` with its reason,
the watchdog restarts the pool with backoff, and a signature that keeps
crashing workers is quarantined to ``422`` until an operator clears it.

Process faults are injected deterministically through the
``worker.execute`` fault site (:mod:`repro.testing.faults`), scheduled
on the parent side so the plan survives worker restarts.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import OptimizationRequest, OptimizerSession
from repro.api.resilience import reset_resilience
from repro.ir import parse_scop
from repro.serve import (QuarantineRegistry, ServeConfig, ServeDaemon,
                         WorkerSupervisor)
from repro.testing.faults import FaultPlan, install_plan

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""


def _request(addr, method, path, body=None, timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, payload,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, resp.read().decode(), dict(resp.getheaders())
    finally:
        conn.close()


def _post(addr, body, timeout=120):
    return _request(addr, "POST", "/v1/optimize", body, timeout=timeout)


def _get(addr, path):
    status, text, _ = _request(addr, "GET", path)
    return status, json.loads(text)


def _stream(addr, body, timeout=120):
    conn = http.client.HTTPConnection(*addr, timeout=timeout)
    try:
        conn.request("POST", "/v1/optimize", json.dumps(body),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        lines = [line.decode().strip() for line in resp if line.strip()]
        return resp.status, lines
    finally:
        conn.close()


def _wait_until(predicate, timeout=15.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _workers_gauge(daemon):
    return daemon.metrics.snapshot()["gauges"]["workers"]


BODY = {"request": {"source": KERNEL}, "use_store": False}


@pytest.fixture()
def make_daemon(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BASE", "0.001")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_resilience()
    install_plan(None)
    daemons = []

    def make(**overrides):
        options = dict(host="127.0.0.1", port=0, max_inflight=4,
                       queue_depth=4, per_client=8, drain_grace=10.0,
                       workers=1, journal=False,
                       worker_restart_base=0.05, worker_restart_cap=0.2,
                       default_session={"dataset_size": 40})
        options.update(overrides)
        daemon = ServeDaemon(ServeConfig(**options))
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield make
    install_plan(None)
    for daemon in daemons:
        daemon.stop(timeout=30)
    reset_resilience()


def _expected_bytes(include_events=True):
    """The canonical in-process answer, rendered exactly as the daemon
    renders it (sorted keys, indent 2)."""
    request = OptimizationRequest.make(
        parse_scop(KERNEL), {"N": 1500}, {"N": 8},
        system="looprag", persona="deepseek")
    session = OptimizerSession(dataset_size=40)
    result = session.optimize(request, use_store=False)
    return json.dumps(result.to_json_dict(include_events=include_events),
                      indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# equivalence: worker path == in-process path, byte for byte
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_worker_results_byte_identical_to_in_process(
            self, make_daemon):
        worker_daemon = make_daemon(workers=1)
        inproc_daemon = make_daemon(workers=0)

        status, worker_text, _ = _post(worker_daemon.address, BODY)
        assert status == 200
        status, inproc_text, _ = _post(inproc_daemon.address, BODY)
        assert status == 200

        assert worker_text == inproc_text
        assert worker_text == _expected_bytes()

    def test_streaming_routes_through_workers(self, make_daemon):
        daemon = make_daemon(workers=1)
        status, lines = _stream(daemon.address,
                                dict(BODY, stream=True))
        assert status == 200
        docs = [json.loads(line) for line in lines]
        kinds = [doc["kind"] for doc in docs]
        assert kinds[0] == "request"
        assert kinds[-1] == "result"
        final = docs[-1]
        final.pop("kind")
        assert json.dumps(final, indent=2, sort_keys=True) \
            == _expected_bytes(include_events=False)


# ----------------------------------------------------------------------
# crash containment: every process fault answers 500, never daemon death
# ----------------------------------------------------------------------
class TestCrashContainment:
    def _assert_crash_then_recovery(self, daemon, expected_reason,
                                    detail_fragment=None):
        status, text, _ = _post(daemon.address, BODY)
        assert status == 500
        error = json.loads(text)["error"]
        assert error["kind"] == "worker_crashed"
        assert error["reason"] == expected_reason
        if detail_fragment:
            assert detail_fragment in error["message"]

        # the daemon itself never died
        status, doc = _get(daemon.address, "/healthz")
        assert status == 200 and doc["status"] == "ok"
        assert daemon.metrics.get("worker_crashes_total") >= 1

        # the watchdog replaces the dead worker (backoff is tiny here)
        assert _wait_until(
            lambda: _workers_gauge(daemon)["alive"] >= 1)
        assert _wait_until(
            lambda: _workers_gauge(daemon)["restarts_total"] >= 1)

        # and with the fault spent, a resubmit is byte-identical to the
        # in-process answer — crash recovery changed nothing
        status, text, _ = _post(daemon.address, BODY)
        assert status == 200
        assert text == _expected_bytes()

    def test_sigkill_answers_500_and_pool_recovers(self, make_daemon):
        daemon = make_daemon(workers=1)
        install_plan(FaultPlan.parse("worker.execute:kill:times=1"))
        self._assert_crash_then_recovery(daemon, "killed",
                                         "killed by SIGKILL")

    def test_hard_exit_reports_its_code(self, make_daemon):
        daemon = make_daemon(workers=1)
        install_plan(FaultPlan.parse("worker.execute:exit:code=7:times=1"))
        self._assert_crash_then_recovery(daemon, "exit", "code 7")

    def test_oom_is_recognized_and_contained(self, make_daemon):
        daemon = make_daemon(workers=1)
        install_plan(FaultPlan.parse("worker.execute:oom:mb=64:times=1"))
        self._assert_crash_then_recovery(daemon, "oom", "out of memory")

    def test_hung_worker_is_killed_by_the_watchdog(self, make_daemon):
        daemon = make_daemon(workers=1, worker_hang_timeout=0.3)
        install_plan(FaultPlan.parse("worker.execute:hang:times=1"))
        self._assert_crash_then_recovery(daemon, "hang", "watchdog")
        assert _workers_gauge(daemon)["hangs_total"] == 1

    def test_worker_deadline_answers_504_without_killing_the_worker(
            self, make_daemon):
        install_plan(FaultPlan.parse(
            "llm.generate:delay:seconds=0.2:always"))
        daemon = make_daemon(workers=1)  # fork inherits the plan
        status, text, _ = _post(daemon.address, dict(
            BODY, deadline_s=0.05,
            session={"llm_backend": "faulty"}))
        assert status == 504
        assert json.loads(text)["error"]["kind"] == "deadline"
        # cooperative unwind: the worker survived and serves the next
        # request without a restart
        status, text, _ = _post(daemon.address, BODY)
        assert status == 200
        assert _workers_gauge(daemon)["restarts_total"] == 0

    def test_in_worker_backend_exhaustion_maps_to_502(self,
                                                      monkeypatch,
                                                      make_daemon):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "2")
        install_plan(FaultPlan.parse("llm.generate:raise:always"))
        daemon = make_daemon(workers=1)  # fork inherits the plan
        status, text, _ = _post(daemon.address, dict(
            BODY, session={"llm_backend": "faulty"}))
        assert status == 502
        assert json.loads(text)["error"]["kind"] == "backend"
        # the worker reported a failure; it did not crash
        assert daemon.metrics.get("worker_crashes_total") == 0


# ----------------------------------------------------------------------
# poison-request quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_poison_signature_is_quarantined_then_released(
            self, make_daemon):
        daemon = make_daemon(workers=1, worker_crash_limit=2)
        install_plan(FaultPlan.parse("worker.execute:kill:times=2"))

        status, text, _ = _post(daemon.address, BODY)
        assert status == 500
        error = json.loads(text)["error"]
        assert error["quarantined"] is False
        signature = error["signature"]
        assert _wait_until(
            lambda: _workers_gauge(daemon)["alive"] >= 1)

        status, text, _ = _post(daemon.address, BODY)
        assert status == 500
        assert json.loads(text)["error"]["quarantined"] is True
        assert _wait_until(
            lambda: _workers_gauge(daemon)["alive"] >= 1)

        # the limit is reached: no more workers are sacrificed
        crashes_before = _workers_gauge(daemon)["crashes_total"]
        status, text, _ = _post(daemon.address, BODY)
        assert status == 422
        error = json.loads(text)["error"]
        assert error["kind"] == "quarantined"
        assert error["signature"] == signature
        assert error["crashes"] == 2
        assert "quarantine/clear" in error["message"]
        assert _workers_gauge(daemon)["crashes_total"] == crashes_before
        assert daemon.metrics.get("rejected_quarantined_total") == 1
        snapshot = daemon.metrics.snapshot()
        assert snapshot["gauges"]["quarantined"] == 1

        # operators can see it ...
        status, doc = _get(daemon.address, "/quarantine")
        assert status == 200
        assert doc["limit"] == 2
        assert [e["signature"] for e in doc["quarantined"]] \
            == [signature]
        assert doc["quarantined"][0]["last_reason"] == "killed"

        # ... and release it; the fault is spent, so it now completes
        status, text, _ = _request(daemon.address, "POST",
                                   "/quarantine/clear",
                                   {"signature": signature})
        assert status == 200
        assert json.loads(text)["cleared"] == 1
        status, text, _ = _post(daemon.address, BODY)
        assert status == 200
        assert text == _expected_bytes()
        assert daemon.metrics.snapshot()["gauges"]["quarantined"] == 0

    def test_registry_unit_behavior(self):
        registry = QuarantineRegistry(limit=2)
        entry = registry.note_crash("sig-a", "killed", "boom")
        assert entry["crashes"] == 1 and not entry["quarantined"]
        assert registry.lookup("sig-a") is None  # suspicion, not poison
        registry.note_success("sig-a")  # clean run clears sub-limit
        assert registry.note_crash("sig-a", "oom", "x")["crashes"] == 1

        registry.note_crash("sig-a", "oom", "x")
        assert registry.lookup("sig-a")["quarantined"] is True
        assert registry.count == 1
        registry.note_success("sig-a")  # success never un-poisons
        assert registry.lookup("sig-a") is not None
        assert [e["signature"] for e in registry.snapshot()] == ["sig-a"]

        assert registry.clear("nope") == 0
        assert registry.clear("sig-a") == 1
        assert registry.lookup("sig-a") is None
        registry.note_crash("b", "exit", "x")
        registry.note_crash("b", "exit", "x")
        assert registry.clear() == 1
        assert registry.count == 0


# ----------------------------------------------------------------------
# supervisor pool mechanics (unit-ish, no HTTP)
# ----------------------------------------------------------------------
class TestSupervisorPool:
    def test_describe_counts_and_clean_shutdown(self):
        supervisor = WorkerSupervisor(workers=2, restart_base=0.05,
                                      restart_cap=0.2)
        supervisor.start()
        try:
            assert _wait_until(
                lambda: supervisor.describe()["alive"] == 2)
            described = supervisor.describe()
            assert described["pool"] == 2
            assert described["busy"] == 0
            assert described["crashes_total"] == 0
        finally:
            supervisor.shutdown()
        assert supervisor.describe()["alive"] == 0

    def test_restart_backoff_doubles_per_consecutive_crash(self):
        supervisor = WorkerSupervisor(workers=1, restart_base=0.5,
                                      restart_cap=2.0)
        supervisor.start()
        try:
            handle = supervisor._idle.get(timeout=5.0)
            handle.proc.kill()
            handle.proc.join(5.0)
            supervisor._reap(handle)
            first_due = supervisor._restart_due[0]
            assert supervisor.crashes_total == 1
            # a second consecutive crash waits twice as long
            supervisor._consecutive_crashes[0] = 1
            fake = type(handle)(0, 99, handle.proc, handle.conn)
            with supervisor._lock:
                supervisor._workers[0] = fake
            supervisor._reap(fake)
            second_due = supervisor._restart_due[0]
            delta = (second_due - time.monotonic()) \
                - (first_due - time.monotonic())
            assert 0.3 < delta < 0.7  # 1.0s vs 0.5s backoff
        finally:
            supervisor.shutdown()
