"""Property-based equivalence: vectorized analysis vs scalar reference.

The vectorized dependence/legality engine must be *bit-identical* to the
scalar reference walk — every `Dependence` (witnesses, distance vectors,
ordering), every legality and parallelism verdict, and the error
class/message on budget exhaustion.  These properties pin that contract
across the synthesis generator corpus, the canonical kernels, and
schedule rewrites both legal and illegal.
"""

import itertools
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dependences import (analysis_engine_name,
                                        analysis_override,
                                        compute_dependences,
                                        parallel_violations,
                                        schedule_violations)
from repro.ir import parse_scop
from repro.synthesis.generator import ExampleSynthesizer
from repro.transforms import interchange, skew, tile

_SETTINGS = dict(deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def both_engines(fn):
    with analysis_override("reference"):
        ref = fn()
    with analysis_override("vectorized"):
        vec = fn()
    return ref, vec


def assert_dependences_identical(program, params=None):
    ref, vec = both_engines(lambda: compute_dependences(program, params))
    assert len(ref) == len(vec)
    for a, b in zip(ref, vec):
        # dataclass equality covers kind/source/target/array/distances/
        # common iterators/carried flag AND the witness tuples — the
        # engines must agree witness for witness, not just class-wise
        assert a == b, f"dependence differs:\n  ref {a}\n  vec {b}"
    return ref


def candidate_schedules(program):
    candidates = []
    for col_a, col_b in itertools.combinations((1, 3, 5), 2):
        for make in (lambda p: interchange(p, col_a, col_b),
                     lambda p: tile(p, [col_a], 2),
                     lambda p: skew(p, target_col=col_a,
                                    source_col=col_b, factor=1)):
            try:
                candidates.append(make(program))
            except Exception:
                continue
    return candidates


class TestSynthesizedPrograms:
    @settings(max_examples=25, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=400))
    def test_dependences_identical(self, index):
        program = ExampleSynthesizer(base_seed=7).synthesize(index)
        assert_dependences_identical(program)

    @settings(max_examples=10, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=200),
           size=st.integers(min_value=4, max_value=14))
    def test_explicit_params_identical(self, index, size):
        program = ExampleSynthesizer(base_seed=11).synthesize(index)
        assert_dependences_identical(program, {"N": size})

    @settings(max_examples=15, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=300))
    def test_legality_verdicts_identical(self, index):
        program = ExampleSynthesizer(base_seed=3).synthesize(index)
        deps = assert_dependences_identical(program)
        for candidate in candidate_schedules(program):
            ref, vec = both_engines(
                lambda: schedule_violations(candidate, deps))
            # identity, not just equality: the verdict lists must pick
            # out the same Dependence objects in the same order
            assert [id(d) for d in ref] == [id(d) for d in vec]

    @settings(max_examples=15, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=300))
    def test_parallelism_verdicts_identical(self, index):
        program = ExampleSynthesizer(base_seed=5).synthesize(index)
        deps = assert_dependences_identical(program)
        for dim in range(program.schedule_width):
            ref, vec = both_engines(
                lambda: parallel_violations(program, deps, dim))
            assert [id(d) for d in ref] == [id(d) for d in vec]


class TestCanonicalKernels:
    def test_fixture_kernels(self, gemm, syrk, jacobi2d, stream, recur):
        for program in (gemm, syrk, jacobi2d, stream, recur):
            deps = assert_dependences_identical(program)
            for candidate in candidate_schedules(program):
                ref, vec = both_engines(
                    lambda: schedule_violations(candidate, deps))
                assert [id(d) for d in ref] == [id(d) for d in vec]

    def test_witness_overflow_rotation_identical(self, gemm):
        """gemm's reduction class overflows the witness bound; the crc
        rotation slots must match record for record."""
        ref, vec = both_engines(lambda: compute_dependences(gemm))
        overflowed = [d for d in ref if len(d.witnesses) >= 24]
        assert overflowed, "expected at least one full witness bucket"
        for a, b in zip(ref, vec):
            assert a.witnesses == b.witnesses

    def test_missing_statement_marks_violated(self, gemm):
        from dataclasses import replace

        deps = compute_dependences(gemm)
        renamed = gemm.with_statements(
            [replace(s, name="X" + s.name) for s in gemm.statements])
        ref, vec = both_engines(
            lambda: schedule_violations(renamed, deps))
        assert [id(d) for d in ref] == [id(d) for d in vec]
        assert len(ref) == len(deps)  # all sources/targets unknown


class TestErrorParity:
    def test_budget_exceeded_message_identical(self, monkeypatch, gemm):
        import sys

        # the package re-exports a `dependences` *function*, shadowing
        # the submodule attribute — go through sys.modules
        dep_mod = sys.modules["repro.analysis.dependences"]
        monkeypatch.setattr(dep_mod, "_ANALYSIS_BUDGET", 10)
        messages = {}
        for engine in ("reference", "vectorized"):
            with analysis_override(engine):
                with pytest.raises(RuntimeError) as err:
                    compute_dependences(gemm)
                messages[engine] = (type(err.value).__name__,
                                    str(err.value))
        assert messages["reference"] == messages["vectorized"]
        assert "dependence analysis budget exceeded" in \
            messages["reference"][1]


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with analysis_override("turbo"):
            with pytest.raises(ValueError):
                analysis_engine_name()

    @pytest.mark.skipif(os.environ.get("REPRO_ANALYSIS") is not None,
                        reason="environment pins an analysis engine "
                               "(reference-spec CI job)")
    def test_default_is_vectorized(self):
        assert analysis_engine_name() == "vectorized"

    def test_override_restores_environment(self):
        before = os.environ.get("REPRO_ANALYSIS")
        with analysis_override("reference"):
            assert analysis_engine_name() == "reference"
        assert os.environ.get("REPRO_ANALYSIS") == before
