"""Shared fixtures: canonical kernels used across the test suite.

Tests run against a throwaway result store (unless the environment
already pins ``REPRO_CACHE_DIR``) so they never read results persisted
by earlier runs or litter the repo with a ``.repro_cache/`` directory.
"""

from __future__ import annotations

import os

import pytest

from repro.ir import parse_scop


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro_cache"))

GEMM_SRC = """
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
"""

SYRK_SRC = """
scop syrk(N, M) {
  scalars alpha=1.5 beta=1.2;
  array C[N][N] output;
  array A[N][M];
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}
"""

JACOBI2D_SRC = """
scop jacobi_2d(T, N) {
  array A[N][N] output;
  array B[N][N] output;
  for (t = 0; t < T; t++) {
    for (i = 1; i < N-1; i++)
      for (j = 1; j < N-1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][1+j] + A[1+i][j] + A[i-1][j]);
    for (i = 1; i < N-1; i++)
      for (j = 1; j < N-1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][1+j] + B[1+i][j] + B[i-1][j]);
  }
}
"""

STREAM_SRC = """
scop stream_add(LEN) {
  array X[LEN] output;
  array Y[LEN];
  array Z[LEN];
  for (i = 0; i < LEN; i++)
    X[i] = Y[i] + 2.0 * Z[i];
}
"""

SEQ_SRC = """
scop recur(LEN) {
  array X[LEN] output;
  for (i = 1; i < LEN; i++)
    X[i] = X[i-1] + 1.0;
}
"""


@pytest.fixture
def gemm():
    return parse_scop(GEMM_SRC)


@pytest.fixture
def syrk():
    return parse_scop(SYRK_SRC)


@pytest.fixture
def jacobi2d():
    return parse_scop(JACOBI2D_SRC)


@pytest.fixture
def stream():
    return parse_scop(STREAM_SRC)


@pytest.fixture
def recur():
    return parse_scop(SEQ_SRC)
