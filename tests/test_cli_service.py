"""CLI service surface: ``optimize --json`` and ``serve-batch``."""

import json

import pytest

from repro.cli import main

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "k.scop"
    path.write_text(KERNEL)
    return str(path)


class TestOptimizeJson:
    def test_json_is_byte_stable_and_structured(self, kernel_file,
                                                capsys):
        argv = ["optimize", kernel_file, "--dataset-size", "40",
                "--json"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second  # byte-stable across runs

        doc = json.loads(first)
        assert set(doc) == {"request", "result", "events"}
        assert doc["request"]["target"] == "axpyish"
        assert doc["request"]["system"] == "looprag"
        assert doc["request"]["perf"] == {"N": 1500}
        assert isinstance(doc["result"]["passed"], bool)
        kinds = [e["kind"] for e in doc["events"]]
        assert kinds[0] == "request" and "selected" in kinds
        assert [e["seq"] for e in doc["events"]] == \
            list(range(len(doc["events"])))

    def test_text_and_json_agree(self, kernel_file, capsys):
        code_text = main(["optimize", kernel_file, "--dataset-size",
                          "40"])
        text = capsys.readouterr().out
        code_json = main(["optimize", kernel_file, "--dataset-size",
                          "40", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code_text == code_json
        assert f"pass: {doc['result']['passed']}" in text

    def test_events_stream_to_stderr(self, kernel_file, capsys):
        main(["optimize", kernel_file, "--dataset-size", "40",
              "--events"])
        captured = capsys.readouterr()
        assert "retrieval_done" in captured.err
        assert "retrieval_done" not in captured.out


class TestServeBatch:
    def test_batch_report(self, kernel_file, tmp_path, capsys):
        spec = {
            "session": {"dataset_size": 40, "seed": 0},
            "requests": [
                {"file": kernel_file, "system": "looprag",
                 "persona": "deepseek", "perf": {"N": 2000},
                 "test": {"N": 8}, "tag": "llm"},
                {"file": kernel_file, "system": "compiler",
                 "optimizer": "pluto", "perf": {"N": 2000},
                 "tag": "comp"},
            ],
        }
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps(spec))
        out_file = tmp_path / "report.json"

        main(["serve-batch", str(batch), "--json", str(out_file),
              "--format", "json"])
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(out_file.read_text())
        assert stdout_doc == file_doc
        assert file_doc["count"] == 2
        tags = [r["request"]["tag"] for r in file_doc["results"]]
        assert tags == ["llm", "comp"]
        assert file_doc["results"][1]["request"]["optimizer"] == "pluto"

        # warm rerun (store hits) renders the identical report
        main(["serve-batch", str(batch), "--format", "json"])
        warm_doc = json.loads(capsys.readouterr().out)
        assert warm_doc == stdout_doc

    def test_bad_request_entry(self, tmp_path):
        batch = tmp_path / "bad.json"
        batch.write_text(json.dumps({"requests": [{"tag": "x"}]}))
        with pytest.raises(SystemExit, match="source"):
            main(["serve-batch", str(batch)])


class TestExitCodes:
    """The audited contract: 0 = passed, 1 = not passed, 2 = errored."""

    def test_result_exit_code_contract(self):
        from types import SimpleNamespace

        from repro.cli import _result_exit_code

        assert _result_exit_code(
            SimpleNamespace(failure=None, passed=True)) == 0
        assert _result_exit_code(
            SimpleNamespace(failure=None, passed=False)) == 1
        # an error must not masquerade as "no passing candidate"
        assert _result_exit_code(
            SimpleNamespace(failure="boom", passed=False)) == 2
        assert _result_exit_code(
            SimpleNamespace(failure="boom", passed=True)) == 2

    def test_optimize_exit_code_matches_result(self, kernel_file,
                                               capsys):
        code = main(["optimize", kernel_file, "--dataset-size", "40",
                     "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"]["failure"] is None
        assert code == (0 if doc["result"]["passed"] else 1)

    def test_serve_batch_exits_2_when_any_request_errors(
            self, kernel_file, tmp_path, capsys):
        spec = {
            "session": {"dataset_size": 40},
            "requests": [
                # an absurd time limit forces a timeout *error*
                {"file": kernel_file, "system": "compiler",
                 "optimizer": "pluto", "perf": {"N": 2000},
                 "time_limit": 1e-9, "tag": "doomed"},
                {"file": kernel_file, "system": "looprag",
                 "perf": {"N": 2000}, "test": {"N": 8}, "tag": "ok"},
            ],
        }
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps(spec))

        code = main(["serve-batch", str(batch), "--no-cache",
                     "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 2
        assert doc["errors"] == 1
        by_tag = {r["request"]["tag"]: r for r in doc["results"]}
        assert by_tag["doomed"]["result"]["failure"]
        assert by_tag["ok"]["result"]["failure"] is None

        # the table rendering surfaces the same count
        code = main(["serve-batch", str(batch), "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "1 errored" in out


class TestStoreMaintenance:
    """``repro store stats`` / ``repro store compact``."""

    @pytest.fixture()
    def populated_cache(self, tmp_path, monkeypatch):
        from repro.evaluation import store as store_mod
        from repro.evaluation.store import ResultStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_mod._STORES.clear()
        store = ResultStore(tmp_path)
        store.put(("a",), [{"v": 1}])
        store.put(("a",), [{"v": 2}])  # superseded duplicate
        store.put(("b",), [{"v": 3}])
        yield tmp_path
        store_mod._STORES.clear()

    def test_stats_json(self, populated_cache, capsys):
        assert main(["store", "stats", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["backend"] == "local"
        results = doc["streams"]["results"]
        assert results["entries"] == 2
        assert results["superseded"] == 1
        assert results["corrupt"] == 0

    def test_stats_table(self, populated_cache, capsys):
        main(["store", "stats"])
        out = capsys.readouterr().out
        assert "# store: local:" in out
        assert "results" in out and "superseded" in out

    def test_compact_then_stats_clean(self, populated_cache, capsys):
        assert main(["store", "compact", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        [report] = doc["compacted"]
        assert report["stream"] == "results"
        assert report["kept"] == 2
        assert report["dropped_superseded"] == 1

        main(["store", "stats", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["streams"]["results"]["superseded"] == 0

    def test_explicit_cache_dir_and_backend(self, tmp_path, capsys):
        main(["store", "stats", "--cache-dir", str(tmp_path / "empty"),
              "--backend", "memory", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["backend"] == "memory"
        assert doc["streams"] == {}

    def test_maintenance_ignores_no_cache(self, populated_cache,
                                          monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        main(["store", "stats", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["streams"]["results"]["entries"] == 2


class TestBenchCacheSummary:
    def test_superseded_and_corrupt_surface_in_summary(
            self, tmp_path, monkeypatch, capsys):
        from repro.evaluation import harness
        from repro.evaluation import store as store_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        harness._RUN_CACHE.clear()
        store_mod._STORES.clear()
        try:
            main(["bench", "--suite", "polybench", "--system",
                  "graphite", "--limit", "2"])
            err = capsys.readouterr().err
            assert "# cache:" in err
            assert "superseded" in err and "corrupt" in err
            assert "local:" in err  # store.describe() names the backend
        finally:
            harness._RUN_CACHE.clear()
            store_mod._STORES.clear()
