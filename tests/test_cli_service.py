"""CLI service surface: ``optimize --json`` and ``serve-batch``."""

import json

import pytest

from repro.cli import main

KERNEL = """
scop axpyish(N) {
  array X[N] output;
  array Y[N];
  for (i = 0; i < N; i++)
    X[i] = X[i] + 2.0 * Y[i];
}
"""


@pytest.fixture()
def kernel_file(tmp_path):
    path = tmp_path / "k.scop"
    path.write_text(KERNEL)
    return str(path)


class TestOptimizeJson:
    def test_json_is_byte_stable_and_structured(self, kernel_file,
                                                capsys):
        argv = ["optimize", kernel_file, "--dataset-size", "40",
                "--json"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second  # byte-stable across runs

        doc = json.loads(first)
        assert set(doc) == {"request", "result", "events"}
        assert doc["request"]["target"] == "axpyish"
        assert doc["request"]["system"] == "looprag"
        assert doc["request"]["perf"] == {"N": 1500}
        assert isinstance(doc["result"]["passed"], bool)
        kinds = [e["kind"] for e in doc["events"]]
        assert kinds[0] == "request" and "selected" in kinds
        assert [e["seq"] for e in doc["events"]] == \
            list(range(len(doc["events"])))

    def test_text_and_json_agree(self, kernel_file, capsys):
        code_text = main(["optimize", kernel_file, "--dataset-size",
                          "40"])
        text = capsys.readouterr().out
        code_json = main(["optimize", kernel_file, "--dataset-size",
                          "40", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code_text == code_json
        assert f"pass: {doc['result']['passed']}" in text

    def test_events_stream_to_stderr(self, kernel_file, capsys):
        main(["optimize", kernel_file, "--dataset-size", "40",
              "--events"])
        captured = capsys.readouterr()
        assert "retrieval_done" in captured.err
        assert "retrieval_done" not in captured.out


class TestServeBatch:
    def test_batch_report(self, kernel_file, tmp_path, capsys):
        spec = {
            "session": {"dataset_size": 40, "seed": 0},
            "requests": [
                {"file": kernel_file, "system": "looprag",
                 "persona": "deepseek", "perf": {"N": 2000},
                 "test": {"N": 8}, "tag": "llm"},
                {"file": kernel_file, "system": "compiler",
                 "optimizer": "pluto", "perf": {"N": 2000},
                 "tag": "comp"},
            ],
        }
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps(spec))
        out_file = tmp_path / "report.json"

        main(["serve-batch", str(batch), "--json", str(out_file),
              "--format", "json"])
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(out_file.read_text())
        assert stdout_doc == file_doc
        assert file_doc["count"] == 2
        tags = [r["request"]["tag"] for r in file_doc["results"]]
        assert tags == ["llm", "comp"]
        assert file_doc["results"][1]["request"]["optimizer"] == "pluto"

        # warm rerun (store hits) renders the identical report
        main(["serve-batch", str(batch), "--format", "json"])
        warm_doc = json.loads(capsys.readouterr().out)
        assert warm_doc == stdout_doc

    def test_bad_request_entry(self, tmp_path):
        batch = tmp_path / "bad.json"
        batch.write_text(json.dumps({"requests": [{"tag": "x"}]}))
        with pytest.raises(SystemExit, match="source"):
            main(["serve-batch", str(batch)])
