"""Loop-view reconstruction details the cost model depends on."""

import pytest

from repro.ir import parse_scop
from repro.machine import build_view
from repro.machine.loopview import LoopInfo
from repro.transforms import interchange, parallelize, skew, tile, vectorize


class TestPrimaryIterators:
    def test_plain_nest(self, gemm):
        view = build_view(gemm, gemm.statements[1],
                          {"NI": 100, "NJ": 100, "NK": 100})
        assert [l.primary for l in view.loops] == ["i", "k", "j"]

    def test_interchange_reorders_primaries(self, gemm):
        t = interchange(gemm, 3, 5, stmts=["S2"])
        view = build_view(t, t.statements[1],
                          {"NI": 100, "NJ": 100, "NK": 100})
        assert [l.primary for l in view.loops] == ["i", "j", "k"]

    def test_skewed_dim_claims_first_unclaimed(self, jacobi2d):
        s = skew(jacobi2d, 3, 1, 1)  # i+t
        view = build_view(s, s.statements[0], {"T": 10, "N": 100})
        assert view.loops[0].primary == "t"
        assert view.loops[1].primary == "i"  # claimed by the skewed dim

    def test_pragma_flags_propagate(self, stream):
        p = vectorize(parallelize(stream, 1), 1)
        view = build_view(p, p.statements[0], {"LEN": 1000})
        assert view.loops[0].parallel and view.loops[0].vectorized


class TestTileStructure:
    def test_tile_and_point_trips(self, stream):
        t = tile(stream, [1], 32)
        view = build_view(t, t.statements[0], {"LEN": 1000})
        tile_loop, point_loop = view.loops
        assert tile_loop.is_tile and tile_loop.tile_size == 32
        assert tile_loop.trip == pytest.approx(32, abs=1)  # ceil(1000/32)
        assert point_loop.trip == pytest.approx(32, rel=0.05)

    def test_tile_steps_scaled(self, stream):
        t = tile(stream, [1], 16)
        view = build_view(t, t.statements[0], {"LEN": 1000})
        assert view.loops[0].steps() == {"i": 16}
        assert view.loops[1].steps() == {"i": 1}

    def test_duplicate_dims_skipped(self, gemm):
        # per-statement tiling leaves copies in unselected statements;
        # the view must not double-count them
        t = tile(gemm, [1], 8, stmts=["S2"])
        view = build_view(t, t.statements[0],
                          {"NI": 64, "NJ": 64, "NK": 64})
        primaries = [l.primary for l in view.loops if not l.is_tile]
        assert primaries == ["i", "j"]


class TestTotals:
    def test_total_iters_guard_scaled(self):
        p = parse_scop("""
        scop g(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            if (i >= 4)
              A[i] = 1.0;
        }
        """)
        view = build_view(p, p.statements[0], {"N": 100},
                          guard_fraction=0.5)
        assert view.total_iters == pytest.approx(50)

    def test_extents_recorded(self, gemm):
        view = build_view(gemm, gemm.statements[1],
                          {"NI": 10, "NJ": 20, "NK": 30})
        assert view.extent_of("i") == 10
        assert view.extent_of("j") == 20
        assert view.extent_of("k") == 30

    def test_triangular_normalisation(self, syrk):
        params = {"N": 200, "M": 100}
        view = build_view(syrk, syrk.statements[1], params)
        product = 1.0
        for loop in view.loops:
            product *= loop.trip
        # normalised trips multiply out to the true instance count
        assert product == pytest.approx(view.total_iters, rel=0.01)
