"""BM25, loop features and LAScore tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_scop
from repro.retrieval import (BM25Index, Retriever, intersection_count,
                             lascore, program_features, statement_features,
                             tokenize)
from repro.synthesis import build_dataset


class TestTokenizer:
    def test_identifiers_and_numbers(self):
        assert "c" in tokenize("C[i][j] = 42;")
        assert "42" in tokenize("C[i][j] = 42;")

    def test_stopwords_dropped(self):
        assert "for" not in tokenize("for (i = 0; i < N; i++)")

    def test_compound_operators(self):
        assert "+=" in tokenize("a[i] += b[i];")

    def test_lowercased(self):
        assert tokenize("ALPHA") == ["alpha"]


class TestBM25:
    def _index(self):
        idx = BM25Index()
        idx.add("a[i] = b[i] + c[i];")
        idx.add("C[i][j] += A[i][k] * B[k][j];")
        idx.add("x[i] = x[i-1] * 0.5;")
        return idx

    def test_exact_match_ranks_first(self):
        idx = self._index()
        top = idx.search("C[i][j] += A[i][k] * B[k][j];", top_n=3)
        assert top[0].doc_id == 1

    def test_score_zero_for_disjoint(self):
        idx = self._index()
        assert idx.score("zzz www", 0) == 0.0

    def test_idf_decreases_with_frequency(self):
        idx = self._index()
        assert idx.idf("i") < idx.idf("k")

    def test_search_respects_top_n(self):
        idx = self._index()
        assert len(idx.search("a b c x", top_n=2)) <= 2

    def test_deterministic_tie_break(self):
        idx = BM25Index()
        idx.add("p q r")
        idx.add("p q r")
        top = idx.search("p", top_n=2)
        assert [d.doc_id for d in top] == [0, 1]


class TestFeatures:
    def test_rename_invariance(self):
        a = parse_scop("scop a(N) { array A[N] output; array B[N]; "
                       "for (i = 0; i < N; i++) A[i] = B[i+1]; }")
        b = parse_scop("scop b(N) { array Z[N] output; array Q[N]; "
                       "for (t = 0; t < N; t++) Z[t] = Q[t+1]; }")
        fa = statement_features(a.statements[0])
        fb = statement_features(b.statements[0])
        assert fa.features == fb.features

    def test_index_offset_changes_features(self):
        a = parse_scop("scop a(N) { array A[N] output; "
                       "for (i = 1; i < N; i++) A[i] = A[i] + 1.0; }")
        b = parse_scop("scop b(N) { array A[N] output; "
                       "for (i = 1; i < N; i++) A[i] = A[i-1] + 1.0; }")
        fa = statement_features(a.statements[0])
        fb = statement_features(b.statements[0])
        assert fa.counter("read_index") != fb.counter("read_index")

    def test_intersection_count_multiset(self):
        from collections import Counter
        a = Counter({"x": 2, "y": 1})
        b = Counter({"x": 1, "z": 4})
        assert intersection_count(a, b) == 1

    def test_program_features_per_statement(self, gemm):
        feats = program_features(gemm)
        assert [f.statement for f in feats] == ["S1", "S2"]


class TestLAScore:
    def test_identical_scores_highest(self, gemm, syrk):
        fg = program_features(gemm)
        fs = program_features(syrk)
        self_score = lascore(fg, fg, 0.0).total
        cross = lascore(fg, fs, 0.0).total
        assert self_score > cross

    def test_statement_mismatch_penalised(self, gemm, stream):
        fg = program_features(gemm)
        fv = program_features(stream)
        score = lascore(fg, fv, 0.0)
        assert score.mismatch > 0

    def test_extra_features_penalised(self):
        target = parse_scop("scop t(N) { array A[N] output; "
                            "for (i = 0; i < N; i++) A[i] = A[i] + 1.0; }")
        lean = parse_scop("scop l(N) { array Z[N] output; "
                          "for (i = 0; i < N; i++) Z[i] = Z[i] + 2.0; }")
        fat = parse_scop("scop f(N) { array Z[N] output; array Q[N]; "
                         "for (i = 0; i < N; i++) "
                         "Z[i] = Z[i] + Q[i+1] * Q[i-1]; }")
        ft = program_features(target)
        assert lascore(ft, program_features(lean), 0.0).total > \
            lascore(ft, program_features(fat), 0.0).total

    def test_base_score_added(self, gemm):
        fg = program_features(gemm)
        assert lascore(fg, fg, 5.0).total == \
            lascore(fg, fg, 0.0).total + 5.0


class TestRetriever:
    @pytest.fixture(scope="class")
    def retriever(self):
        return Retriever(build_dataset(size=60, seed=13))

    def test_rank_returns_top_n(self, retriever, gemm):
        assert len(retriever.rank(gemm, top_n=5)) == 5

    def test_methods_differ(self, retriever, gemm):
        loop = [d.entry.name for d in retriever.rank(gemm, "loop-aware")]
        bm25 = [d.entry.name for d in retriever.rank(gemm, "bm25")]
        weighted = [d.entry.name
                    for d in retriever.rank(gemm, "weighted")]
        assert loop != bm25 or loop != weighted

    def test_unknown_method_rejected(self, retriever, gemm):
        with pytest.raises(ValueError):
            retriever.rank(gemm, "dense-embedding")

    def test_demonstrations_sampled_from_top(self, retriever, gemm):
        rng = random.Random(0)
        demos = retriever.demonstrations(gemm, rng)
        top10 = {d.entry.name for d in retriever.rank(gemm, top_n=10)}
        assert len(demos) == 3
        assert all(d.entry.name in top10 for d in demos)

    def test_scores_sorted_descending(self, retriever, gemm):
        scores = [d.score for d in retriever.rank(gemm, "loop-aware")]
        assert scores == sorted(scores, reverse=True)
