"""Property-based tests on the retrieval scoring machinery."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.retrieval import (BM25Index, feature_score, intersection_count,
                             lascore, statement_mismatch, tokenize)
from repro.retrieval.features import StatementFeatures
from repro.retrieval.lascore import (DEFAULT_PENALTY_WEIGHTS,
                                     DEFAULT_REWARD_WEIGHTS)

words = st.text(alphabet="abcxyz", min_size=1, max_size=4)
documents = st.lists(words, min_size=1, max_size=12).map(" ".join)


class TestBM25Properties:
    @given(st.lists(documents, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_scores_non_negative(self, docs):
        index = BM25Index()
        for doc in docs:
            index.add(doc)
        for doc_id in range(len(docs)):
            assert index.score(docs[0], doc_id) >= 0.0

    @given(st.lists(documents, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_search_is_sorted(self, docs):
        index = BM25Index()
        for doc in docs:
            index.add(doc)
        hits = index.search(docs[0], top_n=len(docs))
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    @given(documents, documents)
    @settings(max_examples=40, deadline=None)
    def test_self_query_at_least_as_good(self, a, b):
        """A document scores its own text at least as high as a disjoint
        query would score it."""
        index = BM25Index()
        index.add(a)
        index.add(b)
        assert index.score(a, 0) >= index.score("qqq www", 0)


def _feats(items_by_kind) -> StatementFeatures:
    packed = []
    for kind in ("schedule", "write_index", "read_index"):
        counter = Counter(items_by_kind.get(kind, {}))
        packed.append((kind, tuple(sorted(counter.items(),
                                          key=lambda kv: repr(kv[0])))))
    return StatementFeatures(statement="S", features=tuple(packed))


feature_items = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]), st.integers(1, 3), max_size=4)
feature_sets = st.fixed_dictionaries({
    "schedule": feature_items,
    "write_index": feature_items,
    "read_index": feature_items,
})


class TestLAScoreProperties:
    @given(feature_sets)
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_maximal(self, items):
        """No example can outscore the target itself (penalties only ever
        subtract from the perfect-match reward)."""
        target = [_feats(items)]
        self_score = feature_score(target, target,
                                   DEFAULT_REWARD_WEIGHTS,
                                   DEFAULT_PENALTY_WEIGHTS)
        stripped = [_feats({})]
        assert self_score >= feature_score(target, stripped,
                                           DEFAULT_REWARD_WEIGHTS,
                                           DEFAULT_PENALTY_WEIGHTS)

    @given(feature_sets, feature_sets)
    @settings(max_examples=50, deadline=None)
    def test_score_bounded_by_self(self, t_items, e_items):
        target = [_feats(t_items)]
        example = [_feats(e_items)]
        self_score = feature_score(target, target,
                                   DEFAULT_REWARD_WEIGHTS,
                                   DEFAULT_PENALTY_WEIGHTS)
        assert feature_score(target, example,
                             DEFAULT_REWARD_WEIGHTS,
                             DEFAULT_PENALTY_WEIGHTS) <= self_score + 1e-9

    @given(st.integers(0, 6), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_mismatch_symmetric_in_counts(self, n, m):
        target = [_feats({})] * n
        example = [_feats({})] * m
        assert statement_mismatch(target, example,
                                  DEFAULT_PENALTY_WEIGHTS) == \
            statement_mismatch(example, target, DEFAULT_PENALTY_WEIGHTS)

    @given(feature_sets, st.floats(0.0, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_base_score_shifts_total_linearly(self, items, base):
        target = [_feats(items)]
        assert lascore(target, target, base).total == pytest.approx(
            lascore(target, target, 0.0).total + base)


class TestIntersection:
    @given(feature_items, feature_items)
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, a, b):
        assert intersection_count(Counter(a), Counter(b)) == \
            intersection_count(Counter(b), Counter(a))

    @given(feature_items)
    @settings(max_examples=50, deadline=None)
    def test_self_intersection_is_size(self, a):
        counter = Counter(a)
        assert intersection_count(counter, counter) == \
            sum(counter.values())


class TestTokenizerProperties:
    @given(documents)
    @settings(max_examples=50, deadline=None)
    def test_idempotent_on_own_output(self, text):
        once = tokenize(text)
        assert tokenize(" ".join(once)) == once
