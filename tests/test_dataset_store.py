"""Dataset persistence round-trip tests."""

import numpy as np
import pytest

from repro.runtime import run
from repro.synthesis import build_dataset, load_dataset, save_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(size=15, seed=51)


class TestRoundTrip:
    def test_save_load_preserves_count(self, dataset, tmp_path):
        path = str(tmp_path / "corpus.json")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(dataset)
        assert loaded.generator == dataset.generator
        assert loaded.seed == dataset.seed

    def test_examples_semantically_identical(self, dataset, tmp_path):
        path = str(tmp_path / "corpus.json")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        for original, restored in zip(dataset, loaded):
            a = run(original.example, {"N": 9})
            b = run(restored.example, {"N": 9})
            assert a.checksum == pytest.approx(b.checksum)

    def test_recipes_replayed(self, dataset, tmp_path):
        path = str(tmp_path / "corpus.json")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        for original, restored in zip(dataset, loaded):
            assert restored.recipe.kinds() == original.recipe.kinds()
            a = run(original.optimized, {"N": 9})
            b = run(restored.optimized, {"N": 9})
            for name in a.outputs:
                assert np.allclose(a.outputs[name], b.outputs[name],
                                   rtol=1e-6, equal_nan=True)

    def test_loaded_dataset_retrievable(self, dataset, tmp_path):
        from repro.retrieval import Retriever
        path = str(tmp_path / "corpus.json")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        retriever = Retriever(loaded)
        target = dataset[0].example
        ranked = retriever.rank(target, top_n=3)
        assert ranked and ranked[0].entry.name == dataset[0].name

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_dataset(str(path))

    def test_file_is_human_readable(self, dataset, tmp_path):
        path = tmp_path / "corpus.json"
        save_dataset(dataset, str(path))
        text = path.read_text()
        assert "for (" in text        # pseudo-C bodies
        assert '"kind"' in text       # recipe steps
