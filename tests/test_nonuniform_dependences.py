"""Non-uniform subscript hardening (ROADMAP soundness item).

Dependences are concretized on small parameter bindings; classes whose
distance grows with the bounds (non-uniform subscripts) can have their
first occurrence ("onset") beyond the fixed 10/13 sizes.  The
hardening detects non-uniform subscripts structurally and adds a
scaled pass at 2x the largest default size, so every onset <= 26 is
covered.  The hypothesis test walks the whole onset range, checks both
engines agree, and pins the regression: onsets in (13, 26] used to be
invisible.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependences import (analysis_override,
                                        compute_dependences,
                                        dependences, is_legal_schedule,
                                        nonuniform_arrays)
from repro.ir import parse_scop


def _late_onset_program(onset: int):
    """``X[2*i] = ... X[i+K]``: the WAR (read at i1, overwritten by the
    write at i2 = i1/2 + K/2 > i1) first occurs at N = ``onset``."""
    k = 2 * (onset - 1)
    return parse_scop(f"""
    scop late(N) {{
      array X[3*N] output;
      array W[3*N];
      for (i = 0; i < N; i++)
        X[2*i] = W[i] + X[i+{k}];
    }}
    """)


def _const_offset_program(offset: int):
    """``X[i] = ... X[i+offset]``: a *uniform* WAR of distance
    ``offset`` whose first occurrence needs ``N >= offset + 1``."""
    return parse_scop(f"""
    scop shifted_read(N) {{
      array X[2*N] output;
      array W[2*N];
      for (i = 0; i < N; i++)
        X[i] = W[i] + X[i+{offset}];
    }}
    """)


class TestDetection:
    def test_coefficient_mismatch_flagged(self):
        assert nonuniform_arrays(_late_onset_program(5)) == {"X"}

    def test_coupled_subscript_flagged(self):
        program = parse_scop("""
        scop coupled(N) {
          array A[2*N] output;
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              A[i+j] = A[i+j] + 1.0;
        }
        """)
        assert nonuniform_arrays(program) == {"A"}

    def test_parameter_in_subscript_flagged(self):
        program = parse_scop("""
        scop shifted(N) {
          array A[3*N] output;
          for (i = 0; i < N; i++)
            A[i+N] = A[i] * 0.5;
        }
        """)
        assert nonuniform_arrays(program) == {"A"}

    def test_large_constant_offset_flagged(self):
        # uniform distance, late onset: X[i] vs X[i+20] first collide
        # at N = 21 — beyond both default bindings
        program = _const_offset_program(20)
        assert nonuniform_arrays(program) == {"X"}

    def test_small_constant_offset_unflagged(self):
        # offset 5's onset (N = 6) is well inside the default sizes
        assert nonuniform_arrays(_const_offset_program(5)) == frozenset()

    def test_uniform_programs_unflagged(self, gemm, jacobi2d, stream,
                                        recur):
        for program in (gemm, jacobi2d, stream, recur):
            assert nonuniform_arrays(program) == frozenset()

    def test_iterator_identity_is_ignored(self):
        # same coefficient under different loop names / positions:
        # collisions start at size 1, no extra pass warranted
        program = parse_scop("""
        scop xloop(N) {
          array A[N] output;
          array T[N][N] output;
          for (i = 0; i < N; i++)
            A[i] = 1.0;
          for (j = 0; j < N; j++)
            for (k = 0; k < N; k++)
              T[j][k] = A[k] + T[k][j];
        }
        """)
        assert nonuniform_arrays(program) == frozenset()

    def test_shifted_loop_lower_bound_flagged(self):
        # the offset hides in the loop bound, not the subscript: the
        # WAR between A[i] (i from 0) and the A[j] read (j from 20)
        # still needs N >= 21
        program = parse_scop("""
        scop shifted_loop(N) {
          array A[2*N] output;
          array B[2*N] output;
          for (i = 0; i < N; i++)
            A[i] = 1.0;
          for (j = 20; j < N; j++)
            B[j] = A[j] + 1.0;
        }
        """)
        assert nonuniform_arrays(program) == {"A"}
        deps = compute_dependences(program)
        assert any(d.kind == "RAW" and d.array == "A" for d in deps)

    def test_read_only_arrays_ignored(self, syrk):
        # syrk reads A[i][k] and A[j][k] (differing linear parts), but
        # A is never written -> no dependence possible, no extra pass
        assert nonuniform_arrays(syrk) == frozenset()


class TestScaledPass:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=26))
    def test_onset_within_scaled_size_is_found(self, onset):
        """Any onset <= 26 produces the WAR class — including the
        (13, 26] band the fixed sizes used to miss — and the engines
        agree witness for witness."""
        program = _late_onset_program(onset)
        with analysis_override("vectorized"):
            vec = compute_dependences(program)
        with analysis_override("reference"):
            ref = compute_dependences(program)
        assert vec == ref
        assert any(d.kind == "WAR" and d.array == "X" for d in vec)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=13, max_value=60))
    def test_constant_offset_onset_is_found(self, offset):
        """Constant-offset classes (uniform distance, late onset) are
        flagged and the binding scales with the spread, so even offsets
        far beyond 26 are concretized where they occur."""
        program = _const_offset_program(offset)
        with analysis_override("vectorized"):
            vec = compute_dependences(program)
        with analysis_override("reference"):
            ref = compute_dependences(program)
        assert vec == ref
        war = [d for d in vec if d.kind == "WAR" and d.array == "X"]
        assert war and war[0].distances == ((offset,),)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=14, max_value=26))
    def test_regression_late_onsets_were_missed(self, onset):
        """The pinned soundness hole: at the fixed sizes alone (explicit
        params bypass the scaled pass) the class is invisible."""
        program = _late_onset_program(onset)
        for size in (10, 13):
            only_fixed = compute_dependences(program, {"N": size})
            assert not any(d.array == "X" for d in only_fixed)
        hardened = compute_dependences(program)
        assert any(d.kind == "WAR" and d.array == "X" for d in hardened)

    def test_uniform_distances_unchanged_by_hardening(self, jacobi2d):
        """Uniform programs must produce byte-identical dependences to
        the plain two-size merge (no third pass leaking in)."""
        assert nonuniform_arrays(jacobi2d) == frozenset()
        merged = compute_dependences(jacobi2d)
        # reconstruct the two-size merge by hand via explicit params
        per_size = [compute_dependences(jacobi2d, {"T": v, "N": v})
                    for v in (10, 13)]
        keys = {(d.kind, d.source, d.target, d.array) for d in merged}
        assert keys == {(d.kind, d.source, d.target, d.array)
                        for deps in per_size for d in deps}

    def test_legality_uses_scaled_witnesses(self):
        """Late-onset witnesses carry the scaled binding they were
        observed at, so legality evaluates them at a size where the
        dependence actually exists."""
        program = _late_onset_program(20)
        deps = dependences(program)
        assert is_legal_schedule(program, deps)
        late = [d for d in deps if d.array == "X"]
        assert late and all(
            dict(src_env).get("N", 0) > 13
            for d in late
            for (_s, src_env), _t in d.witnesses)

    def test_budget_overflow_falls_back_to_base_sizes(self):
        """A deep non-uniform nest whose scaled pass would blow the
        enumeration budget keeps the base-size classes (no crash)."""
        program = parse_scop("""
        scop deep(N) {
          array A[2*N][N][N] output;
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              for (k = 0; k < N; k++)
                for (l = 0; l < N; l++)
                  A[i+j][k][l] = A[i+j][k][l] + 1.0;
        }
        """)
        assert nonuniform_arrays(program) == {"A"}
        deps = compute_dependences(program)  # must not raise
        assert any(d.array == "A" for d in deps)
