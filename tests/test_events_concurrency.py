"""EventBus under concurrency, and the subscriber-drop contract.

The daemon publishes session and resilience events from many handler
threads while operators subscribe/unsubscribe live.  These tests pin
the guarantees that makes safe: no lost events for surviving
subscribers, per-publisher ordering, and a raising subscriber being
dropped exactly once — loudly (warning log + ``subscriber_dropped``
event), never silently.
"""

import logging
import threading

from repro.api.events import EventBus, SessionEvent


def _tick(seq, **data):
    return SessionEvent.make(seq, "tick", data)


class TestConcurrentPublish:
    def test_every_subscriber_sees_every_event_in_publisher_order(self):
        bus = EventBus()
        publishers, per_publisher = 8, 50
        received = [[] for _ in range(3)]
        for sink in received:
            bus.subscribe(sink.append)

        def publish(tid):
            for seq in range(per_publisher):
                bus.publish(_tick(seq, tid=tid))

        workers = [threading.Thread(target=publish, args=(tid,))
                   for tid in range(publishers)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        for events in received:
            assert len(events) == publishers * per_publisher
            for tid in range(publishers):
                seqs = [e.seq for e in events if e.get("tid") == tid]
                # interleaving across publishers is fine; reordering
                # within one publisher is not
                assert seqs == list(range(per_publisher))

    def test_subscribe_unsubscribe_churn_during_publish(self):
        bus = EventBus()
        stable = []
        bus.subscribe(stable.append)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                unsubscribe = bus.subscribe(lambda event: None)
                unsubscribe()

        churners = [threading.Thread(target=churn) for _ in range(4)]
        for worker in churners:
            worker.start()
        try:
            for seq in range(200):
                bus.publish(_tick(seq))
        finally:
            stop.set()
            for worker in churners:
                worker.join()

        # churn never loses events for the stable subscriber
        assert [e.seq for e in stable] == list(range(200))
        assert bus.subscriber_count == 1

    def test_unsubscribe_is_idempotent_and_thread_safe(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(lambda event: None)
        workers = [threading.Thread(target=unsubscribe)
                   for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert bus.subscriber_count == 0


class TestSubscriberDrop:
    def test_raising_subscriber_dropped_loudly(self, caplog):
        bus = EventBus()
        survivor = []
        bus.subscribe(survivor.append)

        def bad(event):
            raise RuntimeError("hook exploded")

        bus.subscribe(bad)
        with caplog.at_level(logging.WARNING, logger="repro.api.events"):
            bus.publish(_tick(0))
        assert "dropping event subscriber" in caplog.text
        assert bus.subscriber_count == 1

        # the survivor saw the original event AND the drop notice
        assert [e.kind for e in survivor] == ["tick",
                                              "subscriber_dropped"]
        notice = survivor[-1]
        assert notice.get("error") == "RuntimeError"
        assert notice.get("during") == "tick"

        # later publishes no longer reach the dropped hook
        bus.publish(_tick(1))
        assert [e.kind for e in survivor] == \
            ["tick", "subscriber_dropped", "tick"]

    def test_cascading_drops_are_bounded(self):
        bus = EventBus()
        survivor = []
        bus.subscribe(survivor.append)

        def bad(event):
            raise RuntimeError("dies on anything")

        def touchy(event):
            if event.kind == "subscriber_dropped":
                raise ValueError("dies on drop notices")

        bus.subscribe(bad)
        bus.subscribe(touchy)
        bus.publish(_tick(0))  # bad drops, its notice then drops touchy
        assert bus.subscriber_count == 1
        kinds = [e.kind for e in survivor]
        assert kinds == ["tick", "subscriber_dropped",
                         "subscriber_dropped"]
        errors = {e.get("error") for e in survivor[1:]}
        assert errors == {"RuntimeError", "ValueError"}

    def test_concurrent_publishes_drop_a_bad_subscriber_once(self):
        bus = EventBus()
        notices = []
        lock = threading.Lock()

        def collect(event):
            if event.kind == "subscriber_dropped":
                with lock:
                    notices.append(event)

        bus.subscribe(collect)

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)

        def publish():
            for seq in range(20):
                bus.publish(_tick(seq))

        workers = [threading.Thread(target=publish) for _ in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        # racing publishers may all see the bad hook fail, but exactly
        # one wins the pop and announces the drop
        assert len(notices) == 1
        assert bus.subscriber_count == 1
