"""Feedback-pipeline integration tests."""

import pytest

from repro.compilers import GCC
from repro.ir import parse_scop
from repro.llm import DEEPSEEK_V3, GPT_4O, SimulatedLLM
from repro.pipeline import (BaseLLMOptimizer, FeedbackPipeline, LoopRAG,
                            STAGES)
from repro.retrieval import Retriever
from repro.synthesis import build_dataset

PERF = {"NI": 1200, "NJ": 1200, "NK": 1200}
TEST = {"NI": 7, "NJ": 6, "NK": 5}


@pytest.fixture(scope="module")
def retriever():
    return Retriever(build_dataset(size=60, seed=31))


@pytest.fixture(scope="module")
def looprag(retriever):
    return LoopRAG(retriever.dataset, DEEPSEEK_V3, seed=2,
                   retriever=retriever)


class TestLoopRAG:
    def test_gemm_passes_and_speeds_up(self, looprag, gemm):
        out = looprag.optimize(gemm, PERF, TEST)
        assert out.passed
        assert out.speedup > 3.0

    def test_best_program_verified(self, looprag, gemm):
        import numpy as np
        from repro.runtime import run
        out = looprag.optimize(gemm, PERF, TEST)
        a = run(gemm, TEST)
        b = run(out.best_program, TEST)
        for name in a.outputs:
            assert np.allclose(a.outputs[name], b.outputs[name],
                               rtol=1e-6, atol=1e-9)

    def test_deterministic(self, retriever, gemm):
        a = LoopRAG(retriever.dataset, DEEPSEEK_V3, seed=7,
                    retriever=retriever).optimize(gemm, PERF, TEST)
        b = LoopRAG(retriever.dataset, DEEPSEEK_V3, seed=7,
                    retriever=retriever).optimize(gemm, PERF, TEST)
        assert a.speedup == b.speedup
        assert a.passed == b.passed

    def test_stage_snapshots_monotone(self, looprag, gemm):
        out = looprag.optimize(gemm, PERF, TEST)
        stages = dict(out.result.stage_pass)
        order = [stages[s] for s in STAGES]
        # once passing, later stages never regress
        for earlier, later in zip(order, order[1:]):
            assert later >= earlier

    def test_candidates_recorded(self, looprag, gemm):
        out = looprag.optimize(gemm, PERF, TEST)
        assert len(out.result.candidates) >= 14  # two rounds of K=7

    def test_demos_attached(self, looprag, gemm):
        out = looprag.optimize(gemm, PERF, TEST)
        assert len(out.result.demos) == 3


class TestBaseLLM:
    def test_runs_without_retrieval(self, gemm):
        out = BaseLLMOptimizer(GPT_4O, seed=2).optimize(gemm, PERF, TEST)
        assert out.result.candidates
        # no feedback: only the first round of candidates exists
        assert len(out.result.candidates) == 7

    def test_stage_snapshots_flat(self, gemm):
        out = BaseLLMOptimizer(GPT_4O, seed=2).optimize(gemm, PERF, TEST)
        stages = dict(out.result.stage_pass)
        assert len({stages[s] for s in STAGES}) == 1


class TestTimeLimit:
    def test_slow_candidates_classified_et(self, retriever):
        # an artificial 1-microsecond budget makes everything time out
        heavy = parse_scop("""
        scop heavy(N) {
          array A[N][N] output;
          array B[N][N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              A[i][j] += B[j][i] * 2.0;
        }
        """)
        pipeline = FeedbackPipeline(
            retriever=retriever,
            llm_factory=lambda: SimulatedLLM(DEEPSEEK_V3, 2),
            base_compiler=GCC,
            time_limit=1e-9, seed=2)
        result = pipeline.run(heavy, {"N": 2000}, {"N": 8})
        assert not result.passed
        assert result.speedup == 0.0


class TestIssueClassification:
    def test_all_issue_kinds_observable(self, retriever):
        """Across a handful of kernels the pipeline must exhibit CE, IA
        and passing candidates (the failure taxonomy of §4.3)."""
        sources = [
            ("k1", "scop k1(N) { array A[N][N] output; array B[N][N]; "
                   "for (i = 1; i < N; i++) for (j = 1; j < N; j++) "
                   "A[i][j] = A[i-1][j-1] + B[i][j]; }"),
            ("k2", "scop k2(N) { array A[N][N] output; "
                   "for (i = 0; i < N; i++) for (j = 1; j < N; j++) "
                   "A[i][j] = A[i][j-1] * 0.5 + 1.0; }"),
            ("k3", "scop k3(N) { array A[N][N] output; array B[N][N]; "
                   "array C[N][N] output; "
                   "for (i = 1; i < N; i++) { "
                   "for (j = 1; j < N; j++) A[i][j] = A[i-1][j] + B[i][j]; "
                   "for (j = 1; j < N; j++) C[i][j] = A[i][j] * B[i][j-1]; "
                   "} }"),
        ]
        issues = set()
        for name, src in sources:
            program = parse_scop(src)
            for seed in range(3):
                pipeline = FeedbackPipeline(
                    retriever=retriever,
                    llm_factory=lambda s=seed: SimulatedLLM(GPT_4O, s),
                    base_compiler=GCC, seed=seed)
                result = pipeline.run(program, {"N": 1200}, {"N": 9})
                for cand in result.candidates:
                    if cand.issue:
                        issues.add(cand.issue)
        assert "CE" in issues
        assert "IA" in issues
