"""Property-based equivalence: optimized engines vs reference interpreter.

The vectorized block executor — and the native compiled-kernel tier
layered on top of it — must be *bit-identical* to the reference
tree-walking interpreter: outputs, checksum, executed-instance count,
branch-coverage ratio, and the exact exception class on failures.  These
properties pin that contract across synthesized programs, schedule
rewrites (legal and illegal), compound assignments, guards, and
out-of-bounds / budget-exhausted candidates.

Every property here runs against *each* optimized engine: always
``vectorized``, plus ``native`` whenever a C toolchain is discovered
(without one the native tier is exercised separately as a fallback in
``test_native_kernels.py``).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir import parse_scop
from repro.runtime import (BranchCoverage, allocate, checksum,
                           clone_storage, engine_override, execute)
from repro.runtime.interpreter import engine_name
from repro.runtime.native import find_toolchain
from repro.synthesis.generator import ExampleSynthesizer
from repro.transforms import TransformError, interchange, skew, tile

_SETTINGS = dict(deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

#: the engines pinned against the reference specification
OPTIMIZED_ENGINES = ["vectorized"]
if find_toolchain() is not None:
    OPTIMIZED_ENGINES.append("native")

needs_toolchain = pytest.mark.skipif(
    find_toolchain() is None,
    reason="no C toolchain discovered (REPRO_CC/cc/gcc/clang)")


def observe(program, params, budget=2_000_000, variant=0):
    """Run one engine; capture everything the contract covers."""
    coverage = BranchCoverage()
    storage = allocate(program, params, variant)
    try:
        instances = execute(program, params, storage, coverage=coverage,
                            budget=budget)
    except Exception as exc:
        return ("error", type(exc).__name__, coverage.ratio())
    outputs = {name: storage[name].copy() for name in program.outputs}
    return ("ok", instances, checksum(storage, program.outputs),
            coverage.ratio(), outputs)


def assert_engines_agree(program, params, budget=2_000_000, variant=0):
    with engine_override("reference"):
        ref = observe(program, params, budget, variant)
    for engine in OPTIMIZED_ENGINES:
        with engine_override(engine):
            got = observe(program, params, budget, variant)
        assert ref[0] == got[0], (engine, ref, got)
        if ref[0] == "error":
            assert ref == got, engine  # same exception class + coverage
            continue
        assert ref[1] == got[1], \
            f"{engine}: executed-instance counts differ"
        assert ref[2] == got[2], f"{engine}: checksums differ"
        assert ref[3] == got[3], f"{engine}: coverage ratios differ"
        for name, want in ref[4].items():
            out = got[4][name]
            assert out.shape == want.shape
            assert np.array_equal(want, out, equal_nan=True), \
                f"{engine}: output {name} differs"


class TestSynthesizedPrograms:
    @settings(max_examples=25, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=400),
           size=st.integers(min_value=4, max_value=11),
           variant=st.integers(min_value=0, max_value=3))
    def test_synthesized(self, index, size, variant):
        program = ExampleSynthesizer(base_seed=7).synthesize(index)
        assert_engines_agree(program, {"N": size}, variant=variant)

    @settings(max_examples=15, **_SETTINGS)
    @given(index=st.integers(min_value=0, max_value=200),
           cols=st.tuples(st.integers(min_value=1, max_value=5),
                          st.integers(min_value=1, max_value=5)),
           size=st.integers(min_value=4, max_value=9))
    def test_transformed_candidates(self, index, cols, size):
        """Schedule rewrites — including illegal ones — stay identical."""
        program = ExampleSynthesizer(base_seed=11).synthesize(index)
        a, b = cols
        for transform in (
                lambda p: interchange(p, min(a, b), max(a, b) + 1),
                lambda p: tile(p, [a], 2 + b),
                lambda p: skew(p, target_col=a, source_col=b, factor=1)):
            try:
                candidate = transform(program)
            except (TransformError, Exception):
                continue
            assert_engines_agree(candidate, {"N": size})


GEMM = """
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
"""


class TestCompoundOps:
    @settings(max_examples=20, **_SETTINGS)
    @given(op=st.sampled_from(["=", "+=", "-=", "*=", "/="]),
           size=st.integers(min_value=3, max_value=16),
           variant=st.integers(min_value=0, max_value=2))
    def test_each_assignment_op(self, op, size, variant):
        src = f"""
        scop ops(N) {{
          array A[N][N] output;
          array B[N][N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              A[i][j] {op} B[i][j] + 0.5;
        }}
        """
        assert_engines_agree(parse_scop(src), {"N": size}, variant=variant)

    @settings(max_examples=15, **_SETTINGS)
    @given(size=st.integers(min_value=3, max_value=9),
           variant=st.integers(min_value=0, max_value=3))
    def test_reduction_chain(self, size, variant):
        assert_engines_agree(
            parse_scop(GEMM),
            {"NI": size, "NJ": size + 1, "NK": size + 2}, variant=variant)

    @settings(max_examples=10, **_SETTINGS)
    @given(size=st.integers(min_value=3, max_value=8))
    def test_calls_vector_safe_and_not(self, size):
        # sqrt vectorizes bit-exactly; exp must stay on the scalar path
        src = """
        scop funcs(N) {
          array A[N] output;
          array B[N];
          for (i = 0; i < N; i++)
            A[i] = sqrt(B[i]) + exp(B[i]) * fabs(B[i] - 0.5);
        }
        """
        assert_engines_agree(parse_scop(src), {"N": size})

    @settings(max_examples=10, **_SETTINGS)
    @given(size=st.integers(min_value=4, max_value=24))
    def test_sequential_recurrence(self, size):
        """Dependence-carrying runs must demote to the scalar path."""
        src = """
        scop rec(N) {
          array X[N] output;
          for (i = 1; i < N; i++)
            X[i] = X[i-1] * 1.01 + 0.25;
        }
        """
        assert_engines_agree(parse_scop(src), {"N": size})

    @settings(max_examples=10, **_SETTINGS)
    @given(size=st.integers(min_value=10, max_value=24),
           threshold=st.integers(min_value=0, max_value=30))
    def test_guarded_at_vector_scale(self, size, threshold):
        """Guard coverage recording matches on block-sized runs."""
        src = f"""
        scop guarded(N) {{
          array A[N][N] output;
          array B[N][N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              if (i + j >= {threshold})
                A[i][j] = B[i][j] * 3.0;
        }}
        """
        assert_engines_agree(parse_scop(src), {"N": size})


class TestErrorClasses:
    @settings(max_examples=15, **_SETTINGS)
    @given(shift=st.integers(min_value=-3, max_value=3),
           size=st.integers(min_value=3, max_value=16))
    def test_out_of_bounds_candidates(self, shift, size):
        src = f"""
        scop oob(N) {{
          array A[N] output;
          array B[N];
          for (i = 0; i < N; i++)
            A[i + {shift}] = B[i];
        }}
        """
        assert_engines_agree(parse_scop(src), {"N": size})

    @settings(max_examples=10, **_SETTINGS)
    @given(budget=st.integers(min_value=1, max_value=80),
           size=st.integers(min_value=4, max_value=8))
    def test_budget_exhaustion(self, budget, size):
        assert_engines_agree(
            parse_scop(GEMM), {"NI": size, "NJ": size, "NK": size},
            budget=budget)

    @settings(max_examples=10, **_SETTINGS)
    @given(size=st.integers(min_value=3, max_value=16),
           read_shift=st.integers(min_value=-2, max_value=2))
    def test_read_out_of_bounds(self, size, read_shift):
        src = f"""
        scop roob(N) {{
          array A[N] output;
          array B[N];
          for (i = 0; i < N; i++)
            A[i] = B[i + {read_shift}] * 2.0;
        }}
        """
        assert_engines_agree(parse_scop(src), {"N": size})


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with engine_override("turbo"):
            with pytest.raises(ValueError):
                engine_name()

    @pytest.mark.skipif(os.environ.get("REPRO_ENGINE") is not None,
                        reason="environment pins an execution engine "
                               "(reference-spec CI job)")
    def test_default_is_vectorized(self):
        assert engine_name() == "vectorized"

    def test_override_restores_environment(self):
        before = os.environ.get("REPRO_ENGINE")
        with engine_override("reference"):
            assert engine_name() == "reference"
        assert os.environ.get("REPRO_ENGINE") == before

    def test_error_messages_match(self):
        src = """
        scop oob(N) {
          array A[N] output;
          for (i = 0; i < N; i++)
            A[i + 1] = 1.0;
        }
        """
        program = parse_scop(src)
        messages = {}
        for engine in ["reference"] + OPTIMIZED_ENGINES:
            with engine_override(engine):
                storage = allocate(program, {"N": 5})
                try:
                    execute(program, {"N": 5}, storage)
                except Exception as exc:
                    messages[engine] = (type(exc).__name__, str(exc))
        for engine in OPTIMIZED_ENGINES:
            assert messages["reference"] == messages[engine]

    def test_partial_writes_before_error_match(self):
        """An OOB mid-stream leaves identical partial state behind."""
        src = """
        scop partial(N) {
          array A[N] output;
          array B[N] output;
          for (i = 0; i < N; i++) {
            B[i] = 7.0;
            A[i + 1] = B[i];
          }
        }
        """
        program = parse_scop(src)
        states = {}
        for engine in ["reference"] + OPTIMIZED_ENGINES:
            with engine_override(engine):
                storage = allocate(program, {"N": 6})
                try:
                    execute(program, {"N": 6}, storage)
                except Exception:
                    pass
                states[engine] = clone_storage(storage)
        for engine in OPTIMIZED_ENGINES:
            for name in states["reference"]:
                assert np.array_equal(states["reference"][name],
                                      states[engine][name]), engine

    @needs_toolchain
    def test_native_engine_selectable(self):
        """``REPRO_ENGINE=native`` is a first-class registry entry."""
        with engine_override("native"):
            assert engine_name() == "native"
            program = parse_scop(GEMM)
            params = {"NI": 6, "NJ": 5, "NK": 4}
            native_storage = allocate(program, params, 1)
            execute(program, params, native_storage)
        with engine_override("reference"):
            ref_storage = allocate(program, params, 1)
            execute(program, params, ref_storage)
        assert np.array_equal(native_storage["C"], ref_storage["C"])
