"""Cooperative cancellation: tokens, scopes, interruptible sleep."""

import threading
import time

import pytest

from repro.cancellation import (Cancelled, CancelToken, DeadlineExceeded,
                                cancel_scope, checkpoint, current_token,
                                sleep_interruptible)


class TestCancelToken:
    def test_fresh_token_passes_checks(self):
        token = CancelToken()
        token.check()
        assert not token.cancelled
        assert not token.expired()
        assert token.remaining() is None

    def test_cancel_sets_reason(self):
        token = CancelToken()
        token.cancel("drain")
        assert token.cancelled
        with pytest.raises(Cancelled) as excinfo:
            token.check()
        assert excinfo.value.reason == "drain"

    def test_deadline_with_fake_clock(self):
        now = [0.0]
        token = CancelToken.with_timeout(5.0, clock=lambda: now[0])
        token.check()
        assert token.remaining() == 5.0
        now[0] = 4.0
        assert token.remaining() == 1.0
        assert not token.expired()
        now[0] = 5.0
        assert token.expired()
        assert token.remaining() == 0.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            token.check()
        assert excinfo.value.reason == "deadline"

    def test_with_timeout_none_or_nonpositive_never_expires(self):
        for seconds in (None, 0, -1.0):
            token = CancelToken.with_timeout(seconds)
            assert token.deadline is None
            token.check()

    def test_deadline_exceeded_is_a_cancellation(self):
        # daemon handlers catch Cancelled and still see the deadline
        # subtype first: the hierarchy is load-bearing
        assert issubclass(DeadlineExceeded, Cancelled)


class TestCancelScope:
    def test_checkpoint_is_noop_without_scope(self):
        assert current_token() is None
        checkpoint()  # must not raise

    def test_scope_installs_and_restores_nested(self):
        outer, inner = CancelToken(), CancelToken()
        with cancel_scope(outer):
            assert current_token() is outer
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_scope_restores_on_exception(self):
        token = CancelToken()
        with pytest.raises(RuntimeError):
            with cancel_scope(token):
                raise RuntimeError("boom")
        assert current_token() is None

    def test_checkpoint_raises_in_cancelled_scope(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(Cancelled):
                checkpoint()

    def test_scope_is_thread_local(self):
        token = CancelToken()
        token.cancel()
        seen = []
        with cancel_scope(token):
            worker = threading.Thread(
                target=lambda: seen.append(current_token()))
            worker.start()
            worker.join()
        assert seen == [None]


class TestSleepInterruptible:
    def test_sleeps_full_duration_without_token(self):
        start = time.monotonic()
        sleep_interruptible(0.05)
        assert time.monotonic() - start >= 0.05

    def test_wakes_promptly_on_cancel(self):
        token = CancelToken()
        timer = threading.Timer(0.05, token.cancel)
        with cancel_scope(token):
            timer.start()
            start = time.monotonic()
            with pytest.raises(Cancelled):
                sleep_interruptible(10.0)
            assert time.monotonic() - start < 5.0
        timer.cancel()

    def test_raises_immediately_when_already_cancelled(self):
        token = CancelToken()
        token.cancel("deadline-ish")
        with cancel_scope(token):
            start = time.monotonic()
            with pytest.raises(Cancelled):
                sleep_interruptible(10.0)
            assert time.monotonic() - start < 1.0
